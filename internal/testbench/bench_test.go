package testbench

import (
	"errors"
	"math"
	"testing"

	"svard/internal/disturb"
	"svard/internal/dram"
)

func newBench(t *testing.T, scrambleOps int) (*Bench, *disturb.Model) {
	t.Helper()
	g := &dram.Geometry{BankGroups: 2, BanksPerGroup: 2, RowsPerBank: 2048, CellsPerRow: 8192}
	g.BuildSubarrays(3, 330, 512)
	model := disturb.NewModel(disturb.DefaultParams(21), g)
	var mapping dram.RowMapping = dram.IdentityMapping{}
	if scrambleOps > 0 {
		mapping = dram.NewScrambleMapping(21, g.RowsPerBank, scrambleOps)
	}
	dev, err := dram.NewDevice(g, dram.DDR4Timing(3200), mapping, model)
	if err != nil {
		t.Fatal(err)
	}
	dev.SetSeed(21)
	return New(dev, model), model
}

// interiorVictim returns a logical row whose physical location has
// same-subarray neighbours on both sides.
func interiorVictim(b *Bench, from int) int {
	g := b.Dev.Geom
	for l := from; l < g.RowsPerBank; l++ {
		if _, _, err := b.AggressorRows(0, l); err == nil {
			return l
		}
	}
	return -1
}

func TestAggressorRowsArePhysicalNeighbours(t *testing.T) {
	b, _ := newBench(t, 5)
	victim := interiorVictim(b, 100)
	if victim < 0 {
		t.Fatal("no interior victim")
	}
	lo, hi, err := b.AggressorRows(0, victim)
	if err != nil {
		t.Fatal(err)
	}
	vp := b.Dev.Map.LogicalToPhysical(victim)
	lp := b.Dev.Map.LogicalToPhysical(lo)
	hp := b.Dev.Map.LogicalToPhysical(hi)
	if lp != vp-1 || hp != vp+1 {
		t.Errorf("aggressors phys %d/%d around victim phys %d", lp, hp, vp)
	}
}

func TestAggressorRowsEdgeRejected(t *testing.T) {
	b, _ := newBench(t, 0)
	// Physical row 0 has no lower neighbour.
	if _, _, err := b.AggressorRows(0, 0); err == nil {
		t.Error("edge victim accepted for double-sided hammering")
	}
}

func TestMeasureBERMatchesAnalytic(t *testing.T) {
	b, model := newBench(t, 0)
	// Pick an interior victim weak enough to show flips at 128K.
	victim := -1
	for probe := 500; probe < b.Dev.Geom.RowsPerBank; probe++ {
		if _, _, err := b.AggressorRows(0, probe); err != nil {
			continue
		}
		if model.HCFirst(0, b.Dev.Map.LogicalToPhysical(probe)) < 100*1024 {
			victim = probe
			break
		}
	}
	if victim < 0 {
		t.Fatal("no weak interior victim found")
	}
	vp := b.Dev.Map.LogicalToPhysical(victim)
	pat := model.WCDP(0, vp)
	const hc = 128 * 1024
	got, err := b.MeasureBER(0, victim, pat, hc, 36)
	if err != nil {
		t.Fatal(err)
	}
	// The device's effective on-time includes the ACT clock; the analytic
	// reference uses the same. Row initialization contributes a handful
	// of extra effective hammers, so allow a small relative slack.
	want := model.BERAt(0, vp, hc, 36+b.Dev.Tim.TCK, pat)
	if want == 0 {
		t.Fatalf("test row too strong (BER 0); pick another geometry seed")
	}
	if rel := math.Abs(got-want) / want; rel > 0.02 {
		t.Errorf("measured BER %v vs analytic %v (rel %v)", got, want, rel)
	}
}

func TestMeasureHCFirstMatchesAnalytic(t *testing.T) {
	b, model := newBench(t, 3)
	levels := disturb.HammerLevels()
	exact, withinOne, n := 0, 0, 0
	for probe := 0; probe < 12; probe++ {
		victim := interiorVictim(b, 100+probe*150)
		if victim < 0 {
			break
		}
		vp := b.Dev.Map.LogicalToPhysical(victim)
		res, err := b.MeasureHCFirst(0, victim, levels, 36)
		if err != nil {
			t.Fatal(err)
		}
		analytic := disturb.LevelIndex(levels, model.HCFirstAt(0, vp, 36+b.Dev.Tim.TCK))
		n++
		d := res.FirstFlipIdx - analytic
		if d == 0 {
			exact++
		}
		if d >= -1 && d <= 0 {
			withinOne++ // init disturbance can only make flips appear earlier
		}
		// The sweep must stop at the first flip.
		if res.FirstFlipIdx < len(levels) && res.TestedUpTo != res.FirstFlipIdx+1 {
			t.Errorf("sweep did not stop at first flip: idx=%d tested=%d", res.FirstFlipIdx, res.TestedUpTo)
		}
	}
	if n == 0 {
		t.Fatal("no victims probed")
	}
	if exact < n*8/10 {
		t.Errorf("only %d/%d rows measured exactly at the analytic level", exact, n)
	}
	if withinOne != n {
		t.Errorf("%d/%d rows outside one level of the analytic value", n-withinOne, n)
	}
}

func TestRowPressLowersMeasuredHCFirst(t *testing.T) {
	b, model := newBench(t, 0)
	levels := disturb.HammerLevels()
	// A weak victim: its 2us HCfirst must fit under the retention-budget
	// ceiling (~12K hammers at 2us on-time).
	victim := -1
	for probe := 100; probe < b.Dev.Geom.RowsPerBank; probe++ {
		if _, _, err := b.AggressorRows(0, probe); err != nil {
			continue
		}
		if model.HCFirst(0, probe) < 64*1024 {
			victim = probe
			break
		}
	}
	if victim < 0 {
		t.Fatal("no weak interior victim")
	}
	short, err := b.MeasureHCFirst(0, victim, levels, 36)
	if err != nil {
		t.Fatal(err)
	}
	long, err := b.MeasureHCFirst(0, victim, levels, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if long.FirstFlipIdx >= short.FirstFlipIdx {
		t.Errorf("RowPress did not lower measured HCfirst: 36ns idx=%d 2us idx=%d",
			short.FirstFlipIdx, long.FirstFlipIdx)
	}
}

func TestRetentionBudgetEnforced(t *testing.T) {
	b, _ := newBench(t, 0)
	victim := interiorVictim(b, 100)
	// 128K hammers at 2us on-time takes ~0.5s >> the 64ms refresh window.
	_, err := b.MeasureBER(0, victim, dram.RowStripe, 128*1024, 2000)
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("expected BudgetError, got %v", err)
	}
	// With enforcement off, the measurement runs.
	b.EnforceBudget = false
	if _, err := b.MeasureBER(0, victim, dram.RowStripe, 128*1024, 2000); err != nil {
		t.Fatalf("unexpected error with budget off: %v", err)
	}
}

func TestSweepCensoredByBudgetAtLongOnTime(t *testing.T) {
	b, _ := newBench(t, 0)
	levels := disturb.HammerLevels()
	victim := interiorVictim(b, 200)
	res, err := b.MeasureHCFirst(0, victim, levels, 2000)
	if err != nil {
		t.Fatal(err)
	}
	// At 2us the budget censors the top levels; the sweep must have
	// stopped early (either at a flip or at the budget).
	if res.TestedUpTo == len(levels) && res.FirstFlipIdx == len(levels) {
		t.Error("sweep claims to have tested all levels at 2us within the refresh window")
	}
}

func TestFindWCDPMatchesModel(t *testing.T) {
	b, model := newBench(t, 0)
	matches, n := 0, 0
	for probe := 0; probe < 8; probe++ {
		victim := interiorVictim(b, 150+probe*200)
		if victim < 0 {
			break
		}
		vp := b.Dev.Map.LogicalToPhysical(victim)
		got, ber, err := b.FindWCDP(0, victim, 128*1024, 36)
		if err != nil {
			t.Fatal(err)
		}
		if ber == 0 {
			continue // row too strong to discriminate patterns
		}
		n++
		if got == model.WCDP(0, vp) {
			matches++
		}
	}
	if n > 0 && matches < n {
		t.Errorf("WCDP search found the model's worst pattern for only %d/%d rows", matches, n)
	}
}

func TestSingleSidedFootprintBoundary(t *testing.T) {
	b, _ := newBench(t, 0)
	g := b.Dev.Geom
	starts := g.SubarrayStarts()
	if len(starts) < 3 {
		t.Skip("need several subarrays")
	}
	// Interior aggressor: both distance-1 neighbours flip with enough acts.
	interior := starts[1] + 100
	victims, err := b.SingleSidedFootprint(0, interior, 512*1024, 36)
	if err != nil {
		t.Fatal(err)
	}
	if len(victims) < 2 {
		t.Errorf("interior footprint = %v, want both sides", victims)
	}
	// Aggressor at the first row of a subarray: the lower neighbour is
	// across the boundary and must not flip.
	edge := starts[2]
	victims, err = b.SingleSidedFootprint(0, edge, 512*1024, 36)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range victims {
		if v < edge {
			t.Errorf("footprint crossed subarray boundary: victim %d below edge %d", v, edge)
		}
	}
}

func TestRowCloneProbe(t *testing.T) {
	b, _ := newBench(t, 0)
	g := b.Dev.Geom
	starts := g.SubarrayStarts()
	if len(starts) < 2 {
		t.Skip("need two subarrays")
	}
	// Cross-subarray probes always fail.
	src := starts[0] + 5
	dst := starts[1] + 5
	ok, err := b.RowCloneSucceeds(0, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("cross-subarray RowClone probe succeeded")
	}
	// Most same-subarray probes succeed.
	succ := 0
	for d := 6; d < 26; d++ {
		ok, err := b.RowCloneSucceeds(0, src, starts[0]+d)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			succ++
		}
	}
	if succ < 10 {
		t.Errorf("same-subarray RowClone success %d/20, want majority", succ)
	}
}
