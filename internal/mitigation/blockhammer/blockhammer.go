// Package blockhammer implements BlockHammer (Yağlıkçı et al., HPCA
// 2021): row activation rates are tracked in dual counting Bloom
// filters over alternating refresh-window halves; rows whose estimate
// crosses the blacklisting threshold are throttled so they cannot reach
// the RowHammer threshold within a window. With Svärd, the blacklisting
// threshold and the pacing interval derive from each activation's
// per-victim budget rather than the chip-wide worst case.
package blockhammer

import (
	"svard/internal/core"
	"svard/internal/mitigation"
	"svard/internal/rowtab"
)

// Defense is a configured BlockHammer instance.
type Defense struct {
	si mitigation.SystemInfo
	th core.Thresholds

	filters [2]*mitigation.CBF
	epoch   uint64
	halfWin uint64
	// lastPaced records the last throttled-ACT grant per row in a paged
	// flat table over the Key space (only blacklisted rows are written,
	// so pages materialize for hammered regions only). The zero value
	// means "never paced", exactly like the map read it replaces.
	lastPaced *rowtab.Table[uint64]
}

// New builds BlockHammer with thresholds th. The filters are sized for
// the tracking capacity a real configuration would provision (the paper
// uses 1K counters per filter with k=4).
func New(si mitigation.SystemInfo, th core.Thresholds) *Defense {
	d := &Defense{}
	d.Reset(si, th)
	return d
}

// Reset reinitializes the defense in place to the state New(si, th)
// produces, retaining filter and table allocations for pooled reuse.
func (d *Defense) Reset(si mitigation.SystemInfo, th core.Thresholds) {
	d.si = si
	d.th = th
	if d.filters[0] == nil {
		d.filters = [2]*mitigation.CBF{mitigation.NewCBF(1024, 4, si.Seed), mitigation.NewCBF(1024, 4, si.Seed+1)}
	} else {
		d.filters[0].Reseed(si.Seed)
		d.filters[1].Reseed(si.Seed + 1)
	}
	d.epoch = 0
	d.halfWin = si.REFWCycles / 2
	keys := int64(si.Banks) * int64(si.RowsPerBank)
	if d.lastPaced == nil {
		d.lastPaced = rowtab.New[uint64](keys)
	} else {
		d.lastPaced.Resize(keys)
	}
}

// Name implements mitigation.Defense.
func (d *Defense) Name() string { return "BlockHammer" }

func (d *Defense) rotate(cycle uint64) {
	e := cycle / d.halfWin
	if e != d.epoch {
		// Clear the filter that has covered a full window.
		d.filters[e%2].Clear()
		d.epoch = e
		d.lastPaced.Clear()
	}
}

func (d *Defense) estimate(key int64) uint32 {
	a := d.filters[0].Estimate(key)
	b := d.filters[1].Estimate(key)
	if a > b {
		return a
	}
	return b
}

// CanActivate implements mitigation.Defense: blacklisted rows are paced
// so a row cannot exceed its budget within a refresh window.
func (d *Defense) CanActivate(bank, row int, cycle uint64) (bool, uint64) {
	d.rotate(cycle)
	budget := d.th.ActivationBudget(bank, row)
	nbl := uint32(budget * mitigation.TriggerFraction)
	if nbl == 0 {
		nbl = 1
	}
	key := mitigation.Key(d.si, bank, row)
	if d.estimate(key) < nbl {
		return true, 0
	}
	// Paced: at most budget/2 activations per refresh window (each of a
	// victim's two aggressors gets half the budget).
	interval := uint64(float64(d.si.REFWCycles) / (budget / 2))
	if interval == 0 {
		interval = 1
	}
	next := d.lastPaced.Get(key) + interval
	if cycle >= next {
		return true, 0
	}
	return false, next
}

// OnActivate implements mitigation.Defense: count the activation; no
// preventive actions (BlockHammer only throttles).
func (d *Defense) OnActivate(bank, row int, cycle uint64) []mitigation.Directive {
	d.rotate(cycle)
	key := mitigation.Key(d.si, bank, row)
	d.filters[0].Insert(key)
	d.filters[1].Insert(key)
	budget := d.th.ActivationBudget(bank, row)
	if d.estimate(key) >= uint32(budget*mitigation.TriggerFraction) {
		d.lastPaced.Set(key, cycle)
	}
	return nil
}

// Blacklisted reports whether the row is currently throttled (test and
// telemetry hook).
func (d *Defense) Blacklisted(bank, row int) bool {
	budget := d.th.ActivationBudget(bank, row)
	return d.estimate(mitigation.Key(d.si, bank, row)) >= uint32(budget*mitigation.TriggerFraction)
}
