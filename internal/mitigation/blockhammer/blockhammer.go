// Package blockhammer implements BlockHammer (Yağlıkçı et al., HPCA
// 2021): row activation rates are tracked in dual counting Bloom
// filters over alternating refresh-window halves; rows whose estimate
// crosses the blacklisting threshold are throttled so they cannot reach
// the RowHammer threshold within a window. With Svärd, the blacklisting
// threshold and the pacing interval derive from each activation's
// per-victim budget rather than the chip-wide worst case.
package blockhammer

import (
	"svard/internal/core"
	"svard/internal/mitigation"
)

// Defense is a configured BlockHammer instance.
type Defense struct {
	si mitigation.SystemInfo
	th core.Thresholds

	filters   [2]*mitigation.CBF
	epoch     uint64
	halfWin   uint64
	lastPaced map[int64]uint64 // last throttled-ACT grant per row
}

// New builds BlockHammer with thresholds th. The filters are sized for
// the tracking capacity a real configuration would provision (the paper
// uses 1K counters per filter with k=4).
func New(si mitigation.SystemInfo, th core.Thresholds) *Defense {
	return &Defense{
		si:        si,
		th:        th,
		filters:   [2]*mitigation.CBF{mitigation.NewCBF(1024, 4, si.Seed), mitigation.NewCBF(1024, 4, si.Seed+1)},
		halfWin:   si.REFWCycles / 2,
		lastPaced: make(map[int64]uint64),
	}
}

// Name implements mitigation.Defense.
func (d *Defense) Name() string { return "BlockHammer" }

func (d *Defense) rotate(cycle uint64) {
	e := cycle / d.halfWin
	if e != d.epoch {
		// Clear the filter that has covered a full window.
		d.filters[e%2].Clear()
		d.epoch = e
		clear(d.lastPaced)
	}
}

func (d *Defense) estimate(key int64) uint32 {
	a := d.filters[0].Estimate(key)
	b := d.filters[1].Estimate(key)
	if a > b {
		return a
	}
	return b
}

// CanActivate implements mitigation.Defense: blacklisted rows are paced
// so a row cannot exceed its budget within a refresh window.
func (d *Defense) CanActivate(bank, row int, cycle uint64) (bool, uint64) {
	d.rotate(cycle)
	budget := d.th.ActivationBudget(bank, row)
	nbl := uint32(budget * mitigation.TriggerFraction)
	if nbl == 0 {
		nbl = 1
	}
	key := mitigation.Key(d.si, bank, row)
	if d.estimate(key) < nbl {
		return true, 0
	}
	// Paced: at most budget/2 activations per refresh window (each of a
	// victim's two aggressors gets half the budget).
	interval := uint64(float64(d.si.REFWCycles) / (budget / 2))
	if interval == 0 {
		interval = 1
	}
	next := d.lastPaced[key] + interval
	if cycle >= next {
		return true, 0
	}
	return false, next
}

// OnActivate implements mitigation.Defense: count the activation; no
// preventive actions (BlockHammer only throttles).
func (d *Defense) OnActivate(bank, row int, cycle uint64) []mitigation.Directive {
	d.rotate(cycle)
	key := mitigation.Key(d.si, bank, row)
	d.filters[0].Insert(key)
	d.filters[1].Insert(key)
	budget := d.th.ActivationBudget(bank, row)
	if d.estimate(key) >= uint32(budget*mitigation.TriggerFraction) {
		d.lastPaced[key] = cycle
	}
	return nil
}

// Blacklisted reports whether the row is currently throttled (test and
// telemetry hook).
func (d *Defense) Blacklisted(bank, row int) bool {
	budget := d.th.ActivationBudget(bank, row)
	return d.estimate(mitigation.Key(d.si, bank, row)) >= uint32(budget*mitigation.TriggerFraction)
}
