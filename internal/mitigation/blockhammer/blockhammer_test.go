package blockhammer

import (
	"testing"

	"svard/internal/core"
	"svard/internal/mitigation"
)

func TestColdRowsNeverThrottled(t *testing.T) {
	si := mitigation.SystemInfo{Banks: 2, RowsPerBank: 4096, REFWCycles: 1 << 20, Seed: 2}
	d := New(si, core.Fixed(1024))
	for row := 0; row < 512; row++ {
		if ok, _ := d.CanActivate(0, row, uint64(row)*50); !ok {
			t.Fatalf("cold row %d throttled", row)
		}
		d.OnActivate(0, row, uint64(row)*50)
	}
}

func TestPacingBoundsActivationRate(t *testing.T) {
	si := mitigation.SystemInfo{Banks: 2, RowsPerBank: 4096, REFWCycles: 1 << 16, Seed: 2}
	budget := 64.0
	d := New(si, core.Fixed(budget))
	granted := 0
	for cycle := uint64(0); cycle < si.REFWCycles/2; cycle++ {
		if ok, _ := d.CanActivate(1, 9, cycle); ok {
			d.OnActivate(1, 9, cycle)
			granted++
		}
	}
	// Once blacklisted the row is paced to ~budget/2 per window; the
	// pre-blacklist burst adds at most the blacklist threshold.
	max := int(budget) // generous bound: threshold + pacing grants
	if granted > max {
		t.Errorf("granted %d activations in half a window, budget %v", granted, budget)
	}
}
