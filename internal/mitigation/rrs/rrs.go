// Package rrs implements Randomized Row Swap (Saileshwar et al.,
// ASPLOS 2022): rows whose activation count crosses the swap threshold
// are swapped with a random row of the bank, breaking the spatial
// correlation between aggressor and victim. A swap copies two full rows
// (the dominant cost: the bank blocks for microseconds), so lowering
// the swap rate — which Svärd does for every row stronger than the
// worst case — buys back most of the overhead (Obsv. 14: 2.76x).
package rrs

import (
	"svard/internal/core"
	"svard/internal/mitigation"
	"svard/internal/rng"
)

// SwapBusyNs is the bank-blocking time of one row swap (two 8 KiB rows
// read and rewritten through the swap buffer).
const SwapBusyNs = 4800.0

// Defense is a configured RRS instance.
type Defense struct {
	si      mitigation.SystemInfo
	th      core.Thresholds
	tracker *mitigation.WindowCounter
	r       *rng.Rand
	cpuGHz  float64
	swaps   uint64
	scratch [1]mitigation.Directive
}

// New builds RRS with thresholds th; cpuGHz converts the swap latency
// to cycles.
func New(si mitigation.SystemInfo, th core.Thresholds, cpuGHz float64) *Defense {
	d := &Defense{}
	d.Reset(si, th, cpuGHz)
	return d
}

// Reset reinitializes the defense in place to the state
// New(si, th, cpuGHz) produces, retaining tracker allocations.
func (d *Defense) Reset(si mitigation.SystemInfo, th core.Thresholds, cpuGHz float64) {
	keys := int64(si.Banks) * int64(si.RowsPerBank)
	d.si = si
	d.th = th
	if d.tracker == nil {
		d.tracker = mitigation.NewWindowCounter(si.REFWCycles, keys)
	} else {
		d.tracker.Reuse(si.REFWCycles, keys)
	}
	if d.r == nil {
		d.r = rng.At(si.Seed, 0x4457)
	} else {
		d.r.Reseed(rng.Hash64(si.Seed, 0x4457))
	}
	d.cpuGHz = cpuGHz
	d.swaps = 0
}

// Name implements mitigation.Defense.
func (d *Defense) Name() string { return "RRS" }

// CanActivate implements mitigation.Defense; RRS never throttles.
func (d *Defense) CanActivate(int, int, uint64) (bool, uint64) { return true, 0 }

// Swaps returns the number of row swaps performed (telemetry).
func (d *Defense) Swaps() uint64 { return d.swaps }

// OnActivate implements mitigation.Defense: count, and swap at half the
// activation budget.
func (d *Defense) OnActivate(bank, row int, cycle uint64) []mitigation.Directive {
	d.tracker.Tick(cycle)
	key := mitigation.Key(d.si, bank, row)
	cnt := d.tracker.Inc(key)
	budget := d.th.ActivationBudget(bank, row)
	if float64(cnt) < budget*mitigation.TriggerFraction {
		return nil
	}
	d.tracker.Reset(key)
	dst := d.r.Intn(d.si.RowsPerBank)
	if dst == row {
		dst = (dst + 1) % d.si.RowsPerBank
	}
	d.tracker.Reset(mitigation.Key(d.si, bank, dst))
	d.swaps++
	d.scratch[0] = mitigation.Directive{
		Kind:       mitigation.SwapRows,
		Bank:       bank,
		Row:        row,
		DstRow:     dst,
		BusyCycles: uint64(SwapBusyNs * d.cpuGHz),
	}
	return d.scratch[:]
}
