package rrs

import (
	"testing"

	"svard/internal/core"
	"svard/internal/mitigation"
)

func TestNoSwapsBelowTrigger(t *testing.T) {
	si := mitigation.SystemInfo{Banks: 2, RowsPerBank: 4096, REFWCycles: 1 << 20, Seed: 4}
	d := New(si, core.Fixed(1024), 3.2)
	trigger := int(1024 * mitigation.TriggerFraction)
	for i := 0; i < trigger-1; i++ {
		if out := d.OnActivate(0, 7, uint64(i)); len(out) != 0 {
			t.Fatalf("swap before trigger at act %d", i)
		}
	}
	if out := d.OnActivate(0, 7, uint64(trigger)); len(out) != 1 {
		t.Fatalf("no swap at trigger: %v", out)
	}
	if d.Swaps() != 1 {
		t.Errorf("swaps = %d", d.Swaps())
	}
}

func TestSwapCostScalesWithClock(t *testing.T) {
	si := mitigation.SystemInfo{Banks: 1, RowsPerBank: 1024, REFWCycles: 1 << 20, Seed: 4}
	slow := New(si, core.Fixed(8), 1.0)
	fast := New(si, core.Fixed(8), 4.0)
	get := func(d *Defense) uint64 {
		for i := 0; ; i++ {
			for _, dir := range d.OnActivate(0, 3, uint64(i)) {
				return dir.BusyCycles
			}
		}
	}
	if get(fast) != 4*get(slow) {
		t.Error("swap latency must be constant in time, not cycles")
	}
}
