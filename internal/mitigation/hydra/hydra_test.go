package hydra

import (
	"testing"

	"svard/internal/core"
	"svard/internal/mitigation"
)

func TestGroupPhaseIsFree(t *testing.T) {
	si := mitigation.SystemInfo{Banks: 2, RowsPerBank: 4096, REFWCycles: 1 << 20, Seed: 3}
	d := New(si, core.Fixed(1024))
	// Below the group threshold no directives appear.
	for i := 0; i < int(core.Fixed(1024).MinBudget()/4)-1; i++ {
		if out := d.OnActivate(0, i%GroupSize, uint64(i)); out != nil {
			t.Fatalf("directive during group phase at act %d", i)
		}
	}
}

func TestRCCHitsAvoidTraffic(t *testing.T) {
	si := mitigation.SystemInfo{Banks: 2, RowsPerBank: 4096, REFWCycles: 1 << 30, Seed: 3}
	d := New(si, core.Fixed(1<<20)) // huge budget: no refreshes
	// Saturate one group, then hit the same row repeatedly: exactly one
	// miss, the rest RCC hits.
	meta := 0
	for i := 0; i < 4000; i++ {
		for _, dir := range d.OnActivate(0, 5, uint64(i)) {
			if dir.Kind == mitigation.ExtraMem {
				meta += dir.MemReads + dir.MemWrites
			}
		}
	}
	if meta > 1 {
		t.Errorf("repeated row caused %d metadata accesses, want <=1", meta)
	}
}
