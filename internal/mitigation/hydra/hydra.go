// Package hydra implements Hydra (Qureshi et al., ISCA 2022): hybrid
// activation tracking with a Group Count Table (GCT) in the memory
// controller and per-row counters in DRAM, cached by a Row Count Cache
// (RCC). Groups count collectively until they cross a threshold; beyond
// it, per-row counters take over, and RCC misses cost real DRAM traffic
// — the dominant overhead, which Svärd cannot remove (Obsv. 14). Rows
// whose counter reaches their threshold get preventive victim refreshes,
// which Svärd does reduce.
package hydra

import (
	"svard/internal/core"
	"svard/internal/mitigation"
	"svard/internal/rowtab"
)

// GroupSize is the number of rows sharing one GCT counter.
const GroupSize = 128

// RCCEntries is the row count cache capacity (row counters resident in
// the memory controller).
const RCCEntries = 32768

// Defense is a configured Hydra instance.
type Defense struct {
	si mitigation.SystemInfo
	th core.Thresholds

	gctThresh uint32
	gct       []uint32 // [bank*groups+group]
	groups    int
	// rct holds the per-row counters (backing store in DRAM) in a paged
	// flat table over the Key space; a row's entry stores count+1 so
	// "tracked at count 0" is distinguishable from "untracked".
	rct *rowtab.Table[uint32]
	rcc *rowCountCache

	nextReset uint64
	scratch   []mitigation.Directive
}

// New builds Hydra with thresholds th. The GCT threshold is sized from
// the worst-case budget, as the hardware structure must be.
func New(si mitigation.SystemInfo, th core.Thresholds) *Defense {
	d := &Defense{}
	d.Reset(si, th)
	return d
}

// Reset reinitializes the defense in place to the state New(si, th)
// produces, retaining table and cache allocations for pooled reuse.
func (d *Defense) Reset(si mitigation.SystemInfo, th core.Thresholds) {
	groups := (si.RowsPerBank + GroupSize - 1) / GroupSize
	gt := uint32(th.MinBudget() / 4)
	if gt == 0 {
		gt = 1
	}
	d.si = si
	d.th = th
	d.gctThresh = gt
	d.groups = groups
	if n := si.Banks * groups; cap(d.gct) >= n {
		d.gct = d.gct[:n]
		clear(d.gct)
	} else {
		d.gct = make([]uint32, n)
	}
	keys := int64(si.Banks) * int64(si.RowsPerBank)
	if d.rct == nil {
		d.rct = rowtab.New[uint32](keys)
	} else {
		d.rct.Resize(keys)
	}
	if d.rcc == nil {
		d.rcc = newRowCountCache(RCCEntries, keys)
	} else {
		d.rcc.reset(keys)
	}
	d.nextReset = si.REFWCycles
}

// Name implements mitigation.Defense.
func (d *Defense) Name() string { return "Hydra" }

// CanActivate implements mitigation.Defense; Hydra never throttles.
func (d *Defense) CanActivate(int, int, uint64) (bool, uint64) { return true, 0 }

func (d *Defense) windowReset(cycle uint64) {
	if cycle < d.nextReset {
		return
	}
	clear(d.gct)
	d.rct.Clear()
	d.rcc.clear()
	for cycle >= d.nextReset {
		d.nextReset += d.si.REFWCycles
	}
}

// OnActivate implements mitigation.Defense.
func (d *Defense) OnActivate(bank, row int, cycle uint64) []mitigation.Directive {
	d.windowReset(cycle)
	g := bank*d.groups + row/GroupSize
	if d.gct[g] < d.gctThresh {
		d.gct[g]++
		return nil
	}
	// Per-row tracking. An RCC miss fetches the counter line from DRAM
	// (one read; a dirty eviction adds a writeback).
	out := d.scratch[:0]
	key := mitigation.Key(d.si, bank, row)
	hit, evictedDirty := d.rcc.touch(key)
	if !hit {
		dir := mitigation.Directive{Kind: mitigation.ExtraMem, Bank: bank, Row: row, MemReads: 1}
		if evictedDirty {
			dir.MemWrites = 1
		}
		out = append(out, dir)
	}
	var cnt uint32
	if v := d.rct.Get(key); v != 0 {
		cnt = v - 1
	} else {
		// Rows in a saturated group start at half their own trigger
		// count: the group total spread over its rows is far below the
		// threshold, but a defense cannot assume uniformity.
		cnt = uint32(d.th.ActivationBudget(bank, row) * mitigation.TriggerFraction / 2)
	}
	cnt++
	budget := d.th.ActivationBudget(bank, row)
	if float64(cnt) >= budget*mitigation.TriggerFraction {
		out = mitigation.AppendVictimRefreshes(out, d.si, bank, row)
		cnt = 0
	}
	d.rct.Set(key, cnt+1)
	d.scratch = out
	if len(out) == 0 {
		return nil
	}
	return out
}

// rowCountCache is a direct-mapped-with-victim-slack stand-in for the
// RCC: a bounded FIFO over a flat presence bitset. Hit behaviour, not
// replacement detail, drives Hydra's traffic shape.
type rowCountCache struct {
	cap   int
	order []int64
	head  int
	set   *rowtab.Bits
}

func newRowCountCache(capacity int, keys int64) *rowCountCache {
	return &rowCountCache{cap: capacity, order: make([]int64, 0, capacity), set: rowtab.NewBits(keys)}
}

// reset reinitializes the cache in place for a (possibly different) key
// space, retaining its allocations.
func (c *rowCountCache) reset(keys int64) {
	c.order = c.order[:0]
	c.head = 0
	c.set.Resize(keys)
}

// touch returns (hit, evictedDirty); misses insert the key, evicting the
// oldest entry when full (counter caches write back on eviction, so
// evictions are dirty).
func (c *rowCountCache) touch(key int64) (bool, bool) {
	if c.set.Get(key) {
		return true, false
	}
	evictedDirty := false
	if len(c.order) >= c.cap {
		old := c.order[c.head]
		c.set.Unset(old)
		c.order[c.head] = key
		c.head = (c.head + 1) % c.cap
		evictedDirty = true
	} else {
		c.order = append(c.order, key)
	}
	c.set.Set(key)
	return false, evictedDirty
}

func (c *rowCountCache) clear() {
	c.order = c.order[:0]
	c.head = 0
	c.set.Clear()
}
