// Package hydra implements Hydra (Qureshi et al., ISCA 2022): hybrid
// activation tracking with a Group Count Table (GCT) in the memory
// controller and per-row counters in DRAM, cached by a Row Count Cache
// (RCC). Groups count collectively until they cross a threshold; beyond
// it, per-row counters take over, and RCC misses cost real DRAM traffic
// — the dominant overhead, which Svärd cannot remove (Obsv. 14). Rows
// whose counter reaches their threshold get preventive victim refreshes,
// which Svärd does reduce.
package hydra

import (
	"svard/internal/core"
	"svard/internal/mitigation"
)

// GroupSize is the number of rows sharing one GCT counter.
const GroupSize = 128

// RCCEntries is the row count cache capacity (row counters resident in
// the memory controller).
const RCCEntries = 32768

// Defense is a configured Hydra instance.
type Defense struct {
	si mitigation.SystemInfo
	th core.Thresholds

	gctThresh uint32
	gct       []uint32 // [bank*groups+group]
	groups    int
	rct       map[int64]uint32 // per-row counters (backing store in DRAM)
	rcc       *rowCountCache

	nextReset uint64
}

// New builds Hydra with thresholds th. The GCT threshold is sized from
// the worst-case budget, as the hardware structure must be.
func New(si mitigation.SystemInfo, th core.Thresholds) *Defense {
	groups := (si.RowsPerBank + GroupSize - 1) / GroupSize
	gt := uint32(th.MinBudget() / 4)
	if gt == 0 {
		gt = 1
	}
	return &Defense{
		si:        si,
		th:        th,
		gctThresh: gt,
		gct:       make([]uint32, si.Banks*groups),
		groups:    groups,
		rct:       make(map[int64]uint32),
		rcc:       newRowCountCache(RCCEntries),
		nextReset: si.REFWCycles,
	}
}

// Name implements mitigation.Defense.
func (d *Defense) Name() string { return "Hydra" }

// CanActivate implements mitigation.Defense; Hydra never throttles.
func (d *Defense) CanActivate(int, int, uint64) (bool, uint64) { return true, 0 }

func (d *Defense) reset(cycle uint64) {
	if cycle < d.nextReset {
		return
	}
	for i := range d.gct {
		d.gct[i] = 0
	}
	clear(d.rct)
	d.rcc.clear()
	for cycle >= d.nextReset {
		d.nextReset += d.si.REFWCycles
	}
}

// OnActivate implements mitigation.Defense.
func (d *Defense) OnActivate(bank, row int, cycle uint64) []mitigation.Directive {
	d.reset(cycle)
	g := bank*d.groups + row/GroupSize
	if d.gct[g] < d.gctThresh {
		d.gct[g]++
		return nil
	}
	// Per-row tracking. An RCC miss fetches the counter line from DRAM
	// (one read; a dirty eviction adds a writeback).
	var out []mitigation.Directive
	key := mitigation.Key(d.si, bank, row)
	hit, evictedDirty := d.rcc.touch(key)
	if !hit {
		dir := mitigation.Directive{Kind: mitigation.ExtraMem, Bank: bank, Row: row, MemReads: 1}
		if evictedDirty {
			dir.MemWrites = 1
		}
		out = append(out, dir)
	}
	cnt, tracked := d.rct[key]
	if !tracked {
		// Rows in a saturated group start at half their own trigger
		// count: the group total spread over its rows is far below the
		// threshold, but a defense cannot assume uniformity.
		cnt = uint32(d.th.ActivationBudget(bank, row) * mitigation.TriggerFraction / 2)
	}
	cnt++
	budget := d.th.ActivationBudget(bank, row)
	if float64(cnt) >= budget*mitigation.TriggerFraction {
		out = append(out, mitigation.VictimRefreshes(d.si, bank, row)...)
		cnt = 0
	}
	d.rct[key] = cnt
	return out
}

// rowCountCache is a direct-mapped-with-victim-slack stand-in for the
// RCC: a bounded map evicting in FIFO order. Hit behaviour, not
// replacement detail, drives Hydra's traffic shape.
type rowCountCache struct {
	cap   int
	order []int64
	head  int
	set   map[int64]bool
}

func newRowCountCache(capacity int) *rowCountCache {
	return &rowCountCache{cap: capacity, order: make([]int64, 0, capacity), set: make(map[int64]bool, capacity)}
}

// touch returns (hit, evictedDirty); misses insert the key, evicting the
// oldest entry when full (counter caches write back on eviction, so
// evictions are dirty).
func (c *rowCountCache) touch(key int64) (bool, bool) {
	if c.set[key] {
		return true, false
	}
	evictedDirty := false
	if len(c.order) >= c.cap {
		old := c.order[c.head]
		delete(c.set, old)
		c.order[c.head] = key
		c.head = (c.head + 1) % c.cap
		evictedDirty = true
	} else {
		c.order = append(c.order, key)
	}
	c.set[key] = true
	return false, evictedDirty
}

func (c *rowCountCache) clear() {
	c.order = c.order[:0]
	c.head = 0
	clear(c.set)
}
