// Package para implements PARA (Kim et al., ISCA 2014): on every row
// activation, with a threshold-derived probability, preventively refresh
// a neighbouring row. PARA is stateless; its aggressiveness is entirely
// in the refresh probability, which makes it the cleanest showcase for
// Svärd — the probability becomes a per-activation function of the
// victim rows' profiled vulnerability instead of the chip-wide worst
// case.
package para

import (
	"svard/internal/core"
	"svard/internal/mitigation"
	"svard/internal/rng"
)

// failureExponent sets the target probability that an aggressor reaches
// its victims' HCfirst without a single preventive refresh:
// (1-p)^T <= e^-A. A = 55 bounds the per-window failure odds around
// 1e-24, covering double-sided aggressor pairs across a large fleet for
// its lifetime — the regime PARA configurations for sub-1K thresholds
// must target.
const failureExponent = 55.0

// Defense is a configured PARA instance.
type Defense struct {
	si      mitigation.SystemInfo
	th      core.Thresholds
	r       *rng.Rand
	scratch [2]mitigation.Directive
}

// New builds PARA with thresholds th.
func New(si mitigation.SystemInfo, th core.Thresholds) *Defense {
	d := &Defense{}
	d.Reset(si, th)
	return d
}

// Reset reinitializes the defense in place to the state New(si, th)
// produces.
func (d *Defense) Reset(si mitigation.SystemInfo, th core.Thresholds) {
	d.si = si
	d.th = th
	if d.r == nil {
		d.r = rng.At(si.Seed, 0x9A7A)
	} else {
		d.r.Reseed(rng.Hash64(si.Seed, 0x9A7A))
	}
}

// Name implements mitigation.Defense.
func (d *Defense) Name() string { return "PARA" }

// CanActivate implements mitigation.Defense; PARA never throttles.
func (d *Defense) CanActivate(int, int, uint64) (bool, uint64) { return true, 0 }

// Probability returns PARA's refresh probability for an activation
// budget T: min(1, A/T).
func Probability(budget float64) float64 {
	if budget <= 0 {
		return 1
	}
	p := failureExponent / budget
	if p > 1 {
		return 1
	}
	return p
}

// OnActivate implements mitigation.Defense: with probability p, refresh
// one immediate neighbour (coin-flipped side), and with probability
// p·couple2 a distance-2 neighbour on that side, covering the full blast
// radius.
func (d *Defense) OnActivate(bank, row int, cycle uint64) []mitigation.Directive {
	budget := d.th.ActivationBudget(bank, row)
	p := Probability(budget)
	if d.r.Float64() >= p {
		return nil
	}
	side := 1
	if d.r.Bool(0.5) {
		side = -1
	}
	out := d.scratch[:0]
	if v := row + side; v >= 0 && v < d.si.RowsPerBank {
		out = append(out, mitigation.Directive{Kind: mitigation.RefreshVictim, Bank: bank, Row: v})
	}
	// Distance-2 victims couple at a fraction of the distance-1 rate;
	// refreshing them proportionally rarely preserves the same bound.
	if d.r.Bool(core.Distance2Coupling) {
		if v := row + 2*side; v >= 0 && v < d.si.RowsPerBank {
			out = append(out, mitigation.Directive{Kind: mitigation.RefreshVictim, Bank: bank, Row: v})
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
