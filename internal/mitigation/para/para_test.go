package para

import (
	"testing"

	"svard/internal/core"
	"svard/internal/mitigation"
)

func TestProbabilityMonotone(t *testing.T) {
	prev := 2.0
	for _, b := range []float64{16, 64, 256, 1024, 4096, 65536} {
		p := Probability(b)
		if p <= 0 || p > 1 {
			t.Fatalf("p(%v) = %v", b, p)
		}
		if p > prev {
			t.Fatalf("probability not non-increasing at %v", b)
		}
		prev = p
	}
}

func TestDirectivesAreRefreshes(t *testing.T) {
	si := mitigation.SystemInfo{Banks: 2, RowsPerBank: 1024, REFWCycles: 1 << 20, Seed: 1}
	d := New(si, core.Fixed(32)) // p = 1: refresh on every ACT
	out := d.OnActivate(0, 100, 0)
	if len(out) == 0 {
		t.Fatal("p=1 PARA produced no refresh")
	}
	for _, dir := range out {
		if dir.Kind != mitigation.RefreshVictim {
			t.Error("PARA may only refresh")
		}
		if dir.Row == 100 || dir.Row < 98 || dir.Row > 102 {
			t.Errorf("refresh outside the blast radius: %d", dir.Row)
		}
	}
}
