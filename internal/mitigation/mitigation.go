// Package mitigation defines the framework shared by the five evaluated
// read disturbance defenses (AQUA, BlockHammer, Hydra, PARA, RRS): the
// Defense interface the memory controller drives, the directives a
// defense can return (preventive victim refresh, row migration, extra
// metadata memory traffic), and the counting structures the defenses
// are built from.
//
// Svärd integration (§6.1) is uniform: every defense takes a
// core.Thresholds. The profile-oblivious configuration passes
// core.Fixed(nRH); the Svärd configuration passes *core.Svard, whose
// ActivationBudget supplies the per-activation threshold on every ACT.
package mitigation

import "svard/internal/rng"

// Kind classifies a Directive.
type Kind int

// Directive kinds.
const (
	// RefreshVictim preventively refreshes (Bank, Row): the MC performs
	// an internal ACT+PRE on that row.
	RefreshVictim Kind = iota
	// SwapRows exchanges the physical contents/locations of Row and
	// DstRow in Bank, blocking the bank for BusyCycles (row migration).
	SwapRows
	// ExtraMem issues MemReads internal metadata reads and MemWrites
	// writes through the normal queues (Hydra's counter traffic).
	ExtraMem
)

// Directive is one action the memory controller must execute on a
// defense's behalf, with its full performance cost.
type Directive struct {
	Kind       Kind
	Bank       int
	Row        int
	DstRow     int
	MemReads   int
	MemWrites  int
	BusyCycles uint64
}

// Defense is the memory-controller-side interface of a read disturbance
// solution. The MC consults CanActivate before issuing an ACT (throttling
// defenses gate here) and calls OnActivate after issuing it.
type Defense interface {
	Name() string
	// CanActivate reports whether an ACT to (bank, row) may issue at
	// cycle; when false, retryAt is the earliest cycle to try again.
	CanActivate(bank, row int, cycle uint64) (ok bool, retryAt uint64)
	// OnActivate records the ACT and returns any directives to execute.
	OnActivate(bank, row int, cycle uint64) []Directive
}

// SystemInfo carries the system parameters defenses size themselves by.
type SystemInfo struct {
	Banks       int
	RowsPerBank int
	REFWCycles  uint64 // refresh window in CPU cycles
	Seed        uint64
}

// Key flattens (bank, row) for map keys.
func Key(si SystemInfo, bank, row int) int64 {
	return int64(bank)*int64(si.RowsPerBank) + int64(row)
}

// Nop is the defense-free baseline.
type Nop struct{}

// Name implements Defense.
func (Nop) Name() string { return "None" }

// CanActivate implements Defense.
func (Nop) CanActivate(int, int, uint64) (bool, uint64) { return true, 0 }

// OnActivate implements Defense.
func (Nop) OnActivate(int, int, uint64) []Directive { return nil }

// TriggerFraction is the fraction of an activation budget at which
// counter-based defenses (Hydra, RRS, AQUA) take their preventive
// action: a victim has two aggressors, each of which must stay below
// half the budget, and deployments add a further 2x safety margin.
const TriggerFraction = 0.25

// VictimRefreshes returns the standard preventive-refresh directive set
// for an aggressor: its two distance-1 neighbours. Distance-2 victims
// receive only a few percent of the disturbance and are covered by the
// periodic refresh sweep within each window.
func VictimRefreshes(si SystemInfo, bank, row int) []Directive {
	out := make([]Directive, 0, 2)
	for _, d := range [...]int{-1, 1} {
		v := row + d
		if v < 0 || v >= si.RowsPerBank {
			continue
		}
		out = append(out, Directive{Kind: RefreshVictim, Bank: bank, Row: v})
	}
	return out
}

// CBF is a counting Bloom filter: the aggressor-tracking structure of
// BlockHammer. Estimates never under-count (no false negatives).
type CBF struct {
	counters []uint32
	k        int
	seed     uint64
}

// NewCBF builds a filter with m counters and k hash functions.
func NewCBF(m, k int, seed uint64) *CBF {
	if m <= 0 || k <= 0 {
		panic("mitigation: invalid CBF shape")
	}
	return &CBF{counters: make([]uint32, m), k: k, seed: seed}
}

func (f *CBF) positions(key int64) []int {
	pos := make([]int, f.k)
	h := rng.Hash64(f.seed, uint64(key))
	for i := range pos {
		pos[i] = int(h % uint64(len(f.counters)))
		h = rng.Mix64(h)
	}
	return pos
}

// Insert increments the key's counters.
func (f *CBF) Insert(key int64) {
	for _, p := range f.positions(key) {
		f.counters[p]++
	}
}

// Estimate returns the key's count estimate (the min over its
// counters); it never under-counts.
func (f *CBF) Estimate(key int64) uint32 {
	est := ^uint32(0)
	for _, p := range f.positions(key) {
		if f.counters[p] < est {
			est = f.counters[p]
		}
	}
	return est
}

// Clear zeroes the filter.
func (f *CBF) Clear() {
	for i := range f.counters {
		f.counters[i] = 0
	}
}

// WindowCounter tracks exact per-row activation counts within refresh
// windows, resetting at each boundary. It stands in for the defenses'
// aggressor trackers (Misra-Gries/CAT); exact counting is conservative
// for security and optimistic (no estimation slack) for performance.
type WindowCounter struct {
	counts    map[int64]uint32
	windowLen uint64
	nextReset uint64
}

// NewWindowCounter builds a tracker that resets every windowLen cycles.
func NewWindowCounter(windowLen uint64) *WindowCounter {
	return &WindowCounter{counts: make(map[int64]uint32), windowLen: windowLen, nextReset: windowLen}
}

// Tick resets the window if cycle crossed the boundary.
func (w *WindowCounter) Tick(cycle uint64) {
	if cycle >= w.nextReset {
		clear(w.counts)
		for cycle >= w.nextReset {
			w.nextReset += w.windowLen
		}
	}
}

// Inc increments and returns the key's count.
func (w *WindowCounter) Inc(key int64) uint32 {
	w.counts[key]++
	return w.counts[key]
}

// Reset zeroes one key.
func (w *WindowCounter) Reset(key int64) { delete(w.counts, key) }

// Count returns the key's current count.
func (w *WindowCounter) Count(key int64) uint32 { return w.counts[key] }
