// Package mitigation defines the framework shared by the five evaluated
// read disturbance defenses (AQUA, BlockHammer, Hydra, PARA, RRS): the
// Defense interface the memory controller drives, the directives a
// defense can return (preventive victim refresh, row migration, extra
// metadata memory traffic), and the counting structures the defenses
// are built from.
//
// Svärd integration (§6.1) is uniform: every defense takes a
// core.Thresholds. The profile-oblivious configuration passes
// core.Fixed(nRH); the Svärd configuration passes *core.Svard, whose
// ActivationBudget supplies the per-activation threshold on every ACT.
package mitigation

import (
	"svard/internal/rng"
	"svard/internal/rowtab"
)

// Kind classifies a Directive.
type Kind int

// Directive kinds.
const (
	// RefreshVictim preventively refreshes (Bank, Row): the MC performs
	// an internal ACT+PRE on that row.
	RefreshVictim Kind = iota
	// SwapRows exchanges the physical contents/locations of Row and
	// DstRow in Bank, blocking the bank for BusyCycles (row migration).
	SwapRows
	// ExtraMem issues MemReads internal metadata reads and MemWrites
	// writes through the normal queues (Hydra's counter traffic).
	ExtraMem
)

// Directive is one action the memory controller must execute on a
// defense's behalf, with its full performance cost.
type Directive struct {
	Kind       Kind
	Bank       int
	Row        int
	DstRow     int
	MemReads   int
	MemWrites  int
	BusyCycles uint64
}

// Defense is the memory-controller-side interface of a read disturbance
// solution. The MC consults CanActivate before issuing an ACT (throttling
// defenses gate here) and calls OnActivate after issuing it.
type Defense interface {
	Name() string
	// CanActivate reports whether an ACT to (bank, row) may issue at
	// cycle; when false, retryAt is the earliest cycle to try again.
	CanActivate(bank, row int, cycle uint64) (ok bool, retryAt uint64)
	// OnActivate records the ACT and returns any directives to execute.
	// The returned slice is only valid until the next OnActivate call:
	// implementations reuse a scratch buffer so the per-activation hot
	// path stays allocation-free, and the controller consumes the
	// directives synchronously before issuing another ACT.
	OnActivate(bank, row int, cycle uint64) []Directive
}

// SystemInfo carries the system parameters defenses size themselves by.
type SystemInfo struct {
	Banks       int
	RowsPerBank int
	REFWCycles  uint64 // refresh window in CPU cycles
	Seed        uint64
}

// Key flattens (bank, row) for map keys.
func Key(si SystemInfo, bank, row int) int64 {
	return int64(bank)*int64(si.RowsPerBank) + int64(row)
}

// Nop is the defense-free baseline.
type Nop struct{}

// Name implements Defense.
func (Nop) Name() string { return "None" }

// CanActivate implements Defense.
func (Nop) CanActivate(int, int, uint64) (bool, uint64) { return true, 0 }

// OnActivate implements Defense.
func (Nop) OnActivate(int, int, uint64) []Directive { return nil }

// TriggerFraction is the fraction of an activation budget at which
// counter-based defenses (Hydra, RRS, AQUA) take their preventive
// action: a victim has two aggressors, each of which must stay below
// half the budget, and deployments add a further 2x safety margin.
const TriggerFraction = 0.25

// VictimRefreshes returns the standard preventive-refresh directive set
// for an aggressor: its two distance-1 neighbours. Distance-2 victims
// receive only a few percent of the disturbance and are covered by the
// periodic refresh sweep within each window.
func VictimRefreshes(si SystemInfo, bank, row int) []Directive {
	return AppendVictimRefreshes(nil, si, bank, row)
}

// AppendVictimRefreshes appends the standard preventive-refresh
// directives for an aggressor to dst and returns the extended slice —
// the allocation-free form every defense's OnActivate scratch path uses.
func AppendVictimRefreshes(dst []Directive, si SystemInfo, bank, row int) []Directive {
	for _, d := range [...]int{-1, 1} {
		v := row + d
		if v < 0 || v >= si.RowsPerBank {
			continue
		}
		dst = append(dst, Directive{Kind: RefreshVictim, Bank: bank, Row: v})
	}
	return dst
}

// CBF is a counting Bloom filter: the aggressor-tracking structure of
// BlockHammer. Estimates never under-count (no false negatives).
type CBF struct {
	counters []uint32
	k        int
	seed     uint64
}

// NewCBF builds a filter with m counters and k hash functions.
func NewCBF(m, k int, seed uint64) *CBF {
	if m <= 0 || k <= 0 {
		panic("mitigation: invalid CBF shape")
	}
	return &CBF{counters: make([]uint32, m), k: k, seed: seed}
}

// Insert increments the key's counters. The hash chain is walked
// inline — the per-activation path must not allocate a position slice.
func (f *CBF) Insert(key int64) {
	h := rng.Hash64(f.seed, uint64(key))
	for i := 0; i < f.k; i++ {
		f.counters[h%uint64(len(f.counters))]++
		h = rng.Mix64(h)
	}
}

// Estimate returns the key's count estimate (the min over its
// counters); it never under-counts.
func (f *CBF) Estimate(key int64) uint32 {
	est := ^uint32(0)
	h := rng.Hash64(f.seed, uint64(key))
	for i := 0; i < f.k; i++ {
		if c := f.counters[h%uint64(len(f.counters))]; c < est {
			est = c
		}
		h = rng.Mix64(h)
	}
	return est
}

// Clear zeroes the filter.
func (f *CBF) Clear() {
	for i := range f.counters {
		f.counters[i] = 0
	}
}

// Reseed clears the filter and replaces its hash seed — the in-place
// equivalent of building a fresh filter, for pooled reuse.
func (f *CBF) Reseed(seed uint64) {
	f.seed = seed
	f.Clear()
}

// WindowCounter tracks exact per-row activation counts within refresh
// windows, resetting at each boundary. It stands in for the defenses'
// aggressor trackers (Misra-Gries/CAT); exact counting is conservative
// for security and optimistic (no estimation slack) for performance.
// Counts live in a paged flat table over the Key-flattened (bank, row)
// space — the per-activation Inc is an array access, not a map hash.
type WindowCounter struct {
	counts    *rowtab.Table[uint32]
	windowLen uint64
	nextReset uint64
}

// NewWindowCounter builds a tracker over keys [0, keys) that resets
// every windowLen cycles; keys is Banks*RowsPerBank for Key-flattened
// row coordinates.
func NewWindowCounter(windowLen uint64, keys int64) *WindowCounter {
	return &WindowCounter{counts: rowtab.New[uint32](keys), windowLen: windowLen, nextReset: windowLen}
}

// Reuse reinitializes the tracker in place to the state
// NewWindowCounter would produce, retaining its table pages.
func (w *WindowCounter) Reuse(windowLen uint64, keys int64) {
	w.counts.Resize(keys)
	w.windowLen = windowLen
	w.nextReset = windowLen
}

// Tick resets the window if cycle crossed the boundary.
func (w *WindowCounter) Tick(cycle uint64) {
	if cycle >= w.nextReset {
		w.counts.Clear()
		for cycle >= w.nextReset {
			w.nextReset += w.windowLen
		}
	}
}

// Inc increments and returns the key's count.
func (w *WindowCounter) Inc(key int64) uint32 {
	return w.counts.Add(key, 1)
}

// Reset zeroes one key.
func (w *WindowCounter) Reset(key int64) { w.counts.Set(key, 0) }

// Count returns the key's current count.
func (w *WindowCounter) Count(key int64) uint32 { return w.counts.Get(key) }
