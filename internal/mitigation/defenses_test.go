package mitigation_test

import (
	"testing"

	"svard/internal/core"
	"svard/internal/mitigation"
	"svard/internal/mitigation/aqua"
	"svard/internal/mitigation/blockhammer"
	"svard/internal/mitigation/hydra"
	"svard/internal/mitigation/para"
	"svard/internal/mitigation/rrs"
)

func testSI() mitigation.SystemInfo {
	return mitigation.SystemInfo{Banks: 4, RowsPerBank: 4096, REFWCycles: 1 << 20, Seed: 3}
}

func TestPARAProbability(t *testing.T) {
	if p := para.Probability(0); p != 1 {
		t.Errorf("p(0) = %v", p)
	}
	if p := para.Probability(10); p != 1 {
		t.Errorf("p(tiny threshold) = %v, want 1", p)
	}
	p64, p4k := para.Probability(64), para.Probability(4096)
	if p64 <= p4k {
		t.Error("probability must grow as threshold shrinks")
	}
	if p4k <= 0 || p4k >= 1 {
		t.Errorf("p(4096) = %v", p4k)
	}
}

func TestPARARefreshRateTracksThreshold(t *testing.T) {
	si := testSI()
	count := func(budget float64) int {
		d := para.New(si, core.Fixed(budget))
		n := 0
		for i := 0; i < 20000; i++ {
			n += len(d.OnActivate(0, 100, uint64(i)))
		}
		return n
	}
	if lo, hi := count(4096), count(64); lo >= hi/4 {
		t.Errorf("refresh volume at 4K (%d) not far below 64 (%d)", lo, hi)
	}
}

func TestBlockHammerThrottlesHammeredRow(t *testing.T) {
	si := testSI()
	d := blockhammer.New(si, core.Fixed(256))
	cycle := uint64(0)
	throttled := false
	for i := 0; i < 1000; i++ {
		ok, retry := d.CanActivate(1, 500, cycle)
		if !ok {
			throttled = true
			if retry <= cycle {
				t.Fatal("retry not in the future")
			}
			break
		}
		d.OnActivate(1, 500, cycle)
		cycle += 100
	}
	if !throttled {
		t.Fatal("1000 rapid activations never throttled at threshold 256")
	}
	if !d.Blacklisted(1, 500) {
		t.Error("hammered row not blacklisted")
	}
	// A cold row is unaffected.
	if ok, _ := d.CanActivate(1, 3000, cycle); !ok {
		t.Error("cold row throttled")
	}
}

func TestBlockHammerWindowForgets(t *testing.T) {
	si := testSI()
	d := blockhammer.New(si, core.Fixed(256))
	for i := 0; i < 200; i++ {
		d.OnActivate(0, 7, uint64(i))
	}
	if !d.Blacklisted(0, 7) {
		t.Fatal("row not blacklisted after 200 acts")
	}
	// After a full window both filters have rotated out.
	later := si.REFWCycles + si.REFWCycles/2 + 1
	if ok, _ := d.CanActivate(0, 7, later); !ok {
		t.Error("blacklist persisted across windows")
	}
}

func TestHydraEscalatesToPerRowAndRefreshes(t *testing.T) {
	si := testSI()
	d := hydra.New(si, core.Fixed(128))
	sawMeta, sawRefresh := false, false
	for i := 0; i < 5000; i++ {
		// Spread across a group to saturate the group counter first.
		row := 256 + i%hydra.GroupSize
		for _, dir := range d.OnActivate(2, row, uint64(i)) {
			switch dir.Kind {
			case mitigation.ExtraMem:
				sawMeta = true
			case mitigation.RefreshVictim:
				sawRefresh = true
			}
		}
	}
	if !sawMeta {
		t.Error("Hydra never generated counter traffic")
	}
	if !sawRefresh {
		t.Error("Hydra never issued preventive refreshes")
	}
}

func TestRRSSwapsAtThreshold(t *testing.T) {
	si := testSI()
	d := rrs.New(si, core.Fixed(64), 3.2)
	var swaps []mitigation.Directive
	for i := 0; i < 100; i++ {
		for _, dir := range d.OnActivate(0, 42, uint64(i)) {
			if dir.Kind == mitigation.SwapRows {
				swaps = append(swaps, dir)
			}
		}
	}
	// Threshold 64 * TriggerFraction = 16: 100 acts → ~6 swaps.
	if len(swaps) < 4 {
		t.Fatalf("swaps = %d, want several", len(swaps))
	}
	for _, s := range swaps {
		if s.Row == s.DstRow {
			t.Error("swap with itself")
		}
		if s.BusyCycles == 0 {
			t.Error("free swap")
		}
	}
	if d.Swaps() != uint64(len(swaps)) {
		t.Error("swap telemetry mismatch")
	}
}

func TestAQUAQuarantinesIntoReservedRegion(t *testing.T) {
	si := testSI()
	d := aqua.New(si, core.Fixed(64), 3.2)
	var moves []mitigation.Directive
	for i := 0; i < 200; i++ {
		for _, dir := range d.OnActivate(3, 10, uint64(i)) {
			if dir.Kind == mitigation.SwapRows {
				moves = append(moves, dir)
			}
		}
	}
	if len(moves) == 0 {
		t.Fatal("no quarantine migrations")
	}
	for _, m := range moves {
		if m.DstRow < d.QuarantineStart() {
			t.Errorf("migration target %d outside quarantine (starts %d)", m.DstRow, d.QuarantineStart())
		}
	}
	// AQUA's one-row migration must cost less than RRS's two-row swap.
	r := rrs.New(si, core.Fixed(64), 3.2)
	var rrsCost uint64
	for i := 0; i < 100; i++ {
		for _, dir := range r.OnActivate(0, 5, uint64(i)) {
			if dir.Kind == mitigation.SwapRows {
				rrsCost = dir.BusyCycles
			}
		}
	}
	if moves[0].BusyCycles >= rrsCost {
		t.Errorf("AQUA migration (%d cycles) not cheaper than RRS swap (%d)", moves[0].BusyCycles, rrsCost)
	}
}

// Svärd integration: a defense built over per-row thresholds must act
// less on strong rows than on weak rows.
func TestDefensesUseSvardBudgets(t *testing.T) {
	si := testSI()
	weak := core.Fixed(64)
	strong := core.Fixed(2048)
	countSwaps := func(th core.Thresholds) uint64 {
		d := rrs.New(si, th, 3.2)
		for i := 0; i < 2000; i++ {
			d.OnActivate(0, 99, uint64(i))
		}
		return d.Swaps()
	}
	if w, s := countSwaps(weak), countSwaps(strong); s >= w {
		t.Errorf("strong threshold swaps (%d) not below weak (%d)", s, w)
	}
}
