// Package aqua implements AQUA (Saxena et al., MICRO 2022): aggressor
// rows that cross the threshold are quarantined — migrated into a
// reserved region of the bank, far from their victims. A migration
// copies one row (half of RRS's two-row swap), which is why AQUA's
// overhead sits below RRS's at equal thresholds, and why Svärd's
// reduction factor is smaller (Fig. 12).
package aqua

import (
	"svard/internal/core"
	"svard/internal/mitigation"
)

// MigrateBusyNs is the bank-blocking time of one row migration.
const MigrateBusyNs = 1650.0

// QuarantineFrac is the fraction of each bank reserved as the
// quarantine region.
const QuarantineFrac = 1.0 / 64

// Defense is a configured AQUA instance.
type Defense struct {
	si      mitigation.SystemInfo
	th      core.Thresholds
	tracker *mitigation.WindowCounter
	cpuGHz  float64

	qStart  int   // first quarantine row
	qNext   []int // per-bank circular allocation cursor
	moves   uint64
	scratch []mitigation.Directive
}

// New builds AQUA with thresholds th.
func New(si mitigation.SystemInfo, th core.Thresholds, cpuGHz float64) *Defense {
	d := &Defense{}
	d.Reset(si, th, cpuGHz)
	return d
}

// Reset reinitializes the defense in place to the state
// New(si, th, cpuGHz) produces, retaining tracker allocations.
func (d *Defense) Reset(si mitigation.SystemInfo, th core.Thresholds, cpuGHz float64) {
	qRows := int(float64(si.RowsPerBank) * QuarantineFrac)
	if qRows < 4 {
		qRows = 4
	}
	keys := int64(si.Banks) * int64(si.RowsPerBank)
	d.si = si
	d.th = th
	if d.tracker == nil {
		d.tracker = mitigation.NewWindowCounter(si.REFWCycles, keys)
	} else {
		d.tracker.Reuse(si.REFWCycles, keys)
	}
	d.cpuGHz = cpuGHz
	d.qStart = si.RowsPerBank - qRows
	if cap(d.qNext) >= si.Banks {
		d.qNext = d.qNext[:si.Banks]
		clear(d.qNext)
	} else {
		d.qNext = make([]int, si.Banks)
	}
	d.moves = 0
}

// Name implements mitigation.Defense.
func (d *Defense) Name() string { return "AQUA" }

// CanActivate implements mitigation.Defense; AQUA never throttles.
func (d *Defense) CanActivate(int, int, uint64) (bool, uint64) { return true, 0 }

// Moves returns the number of quarantine migrations (telemetry).
func (d *Defense) Moves() uint64 { return d.moves }

// QuarantineStart returns the first quarantine row (for address-space
// carving by the OS/allocator, which must not place data there).
func (d *Defense) QuarantineStart() int { return d.qStart }

// OnActivate implements mitigation.Defense: count, and quarantine at
// half the activation budget.
func (d *Defense) OnActivate(bank, row int, cycle uint64) []mitigation.Directive {
	d.tracker.Tick(cycle)
	key := mitigation.Key(d.si, bank, row)
	cnt := d.tracker.Inc(key)
	budget := d.th.ActivationBudget(bank, row)
	if float64(cnt) < budget*mitigation.TriggerFraction {
		return nil
	}
	d.tracker.Reset(key)
	qRows := d.si.RowsPerBank - d.qStart
	dst := d.qStart + d.qNext[bank]
	d.qNext[bank] = (d.qNext[bank] + 1) % qRows
	if dst == row {
		return nil // already quarantined in this slot
	}
	d.tracker.Reset(mitigation.Key(d.si, bank, dst))
	d.moves++
	out := append(d.scratch[:0], mitigation.Directive{
		Kind:       mitigation.SwapRows, // quarantine = one-way migrate; the slot's occupant returns home
		Bank:       bank,
		Row:        row,
		DstRow:     dst,
		BusyCycles: uint64(MigrateBusyNs * d.cpuGHz),
	})
	// The quarantine region is dense: a hammered occupant disturbs the
	// adjacent slots. Each migration refreshes the destination's
	// neighbours, bounding the accrual of every slot between two
	// consecutive occupancies of its neighbours.
	out = mitigation.AppendVictimRefreshes(out, d.si, bank, dst)
	d.scratch = out
	return out
}
