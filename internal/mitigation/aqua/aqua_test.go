package aqua

import (
	"testing"

	"svard/internal/core"
	"svard/internal/mitigation"
)

func TestQuarantineSlotsRotate(t *testing.T) {
	si := mitigation.SystemInfo{Banks: 2, RowsPerBank: 4096, REFWCycles: 1 << 24, Seed: 5}
	d := New(si, core.Fixed(16), 3.2)
	dests := map[int]bool{}
	for i := 0; i < 2000; i++ {
		for _, dir := range d.OnActivate(0, 33, uint64(i)) {
			if dir.Kind == mitigation.SwapRows {
				dests[dir.DstRow] = true
				if dir.DstRow < d.QuarantineStart() {
					t.Fatalf("destination %d before quarantine start %d", dir.DstRow, d.QuarantineStart())
				}
			}
		}
	}
	if len(dests) < 2 {
		t.Errorf("quarantine never rotated: %d distinct slots", len(dests))
	}
	if d.Moves() == 0 {
		t.Error("no migrations recorded")
	}
}

func TestMigrationsRefreshDestinationNeighbours(t *testing.T) {
	si := mitigation.SystemInfo{Banks: 1, RowsPerBank: 2048, REFWCycles: 1 << 24, Seed: 5}
	d := New(si, core.Fixed(16), 3.2)
	for i := 0; ; i++ {
		out := d.OnActivate(0, 99, uint64(i))
		if len(out) == 0 {
			continue
		}
		refreshes := 0
		for _, dir := range out {
			if dir.Kind == mitigation.RefreshVictim {
				refreshes++
			}
		}
		if refreshes == 0 {
			t.Error("migration without neighbour refreshes (quarantine density)")
		}
		return
	}
}
