package mitigation

import (
	"testing"
	"testing/quick"
)

func TestCBFNeverUndercounts(t *testing.T) {
	f := NewCBF(256, 4, 1)
	for i := int64(0); i < 100; i++ {
		for j := int64(0); j <= i%5; j++ {
			f.Insert(i)
		}
	}
	for i := int64(0); i < 100; i++ {
		want := uint32(i%5) + 1
		if got := f.Estimate(i); got < want {
			t.Fatalf("key %d estimate %d < true %d", i, got, want)
		}
	}
	if f.Estimate(99999) > 20 {
		// Collisions can over-count but not wildly at this load.
		t.Errorf("absent key estimate = %d", f.Estimate(99999))
	}
	f.Clear()
	if f.Estimate(1) != 0 {
		t.Error("clear did not zero the filter")
	}
}

func TestQuickCBFOverapproximates(t *testing.T) {
	fn := func(keys []int16) bool {
		f := NewCBF(512, 3, 7)
		truth := map[int64]uint32{}
		for _, k := range keys {
			f.Insert(int64(k))
			truth[int64(k)]++
		}
		for k, n := range truth {
			if f.Estimate(k) < n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWindowCounterResets(t *testing.T) {
	w := NewWindowCounter(1000, 1024)
	if w.Inc(5) != 1 || w.Inc(5) != 2 {
		t.Fatal("increment broken")
	}
	w.Tick(999)
	if w.Count(5) != 2 {
		t.Error("tick inside window reset counts")
	}
	w.Tick(1000)
	if w.Count(5) != 0 {
		t.Error("window boundary did not reset")
	}
	// Skipping multiple windows realigns the boundary.
	w.Inc(5)
	w.Tick(5500)
	if w.Count(5) != 0 {
		t.Error("multi-window skip did not reset")
	}
	w.Inc(7)
	w.Tick(5600)
	if w.Count(7) != 1 {
		t.Error("reset boundary misaligned after skip")
	}
}

func TestVictimRefreshesClamped(t *testing.T) {
	si := SystemInfo{Banks: 2, RowsPerBank: 100}
	mid := VictimRefreshes(si, 0, 50)
	if len(mid) != 2 {
		t.Fatalf("interior refreshes = %d, want 2", len(mid))
	}
	edge := VictimRefreshes(si, 0, 0)
	if len(edge) != 1 || edge[0].Row != 1 {
		t.Fatalf("edge refreshes = %+v", edge)
	}
	for _, d := range append(mid, edge...) {
		if d.Kind != RefreshVictim {
			t.Error("wrong directive kind")
		}
	}
}

func TestNopDefense(t *testing.T) {
	var n Nop
	if ok, _ := n.CanActivate(0, 0, 0); !ok {
		t.Error("Nop throttles")
	}
	if n.OnActivate(0, 0, 0) != nil {
		t.Error("Nop acts")
	}
}

func TestKeyUnique(t *testing.T) {
	si := SystemInfo{Banks: 4, RowsPerBank: 1 << 20}
	seen := map[int64]bool{}
	for b := 0; b < 4; b++ {
		for r := 0; r < 100; r++ {
			k := Key(si, b, r)
			if seen[k] {
				t.Fatalf("key collision at bank %d row %d", b, r)
			}
			seen[k] = true
		}
	}
}
