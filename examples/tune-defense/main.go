// Tune-defense: attach Svärd to PARA and RRS on a Table 4 system and
// compare their overheads against the profile-oblivious configuration
// on one workload mix — the core claim of the paper in one run.
package main

import (
	"fmt"
	"log"

	"svard"
	"svard/internal/metrics"
)

func main() {
	base := svard.DefaultSimConfig()
	base.Cores = 4
	base.Mix = []string{"mcf06", "ycsb-a", "lbm06", "tpcc"}
	base.InstrPerCore = 80_000
	base.WarmupPerCore = 15_000
	base.ModuleLabel = "S0"
	base.NRH = 128 // a future chip: worst-case HCfirst of 128

	// Defense-free baseline.
	baseline, err := svard.RunSim(base)
	if err != nil {
		log.Fatal(err)
	}

	eval := func(defense string, useSvard bool) {
		cfg := base
		cfg.Defense = defense
		cfg.Svard = useSvard
		res, err := svard.RunSim(cfg)
		if err != nil {
			log.Fatal(err)
		}
		cores := make([]metrics.PerCore, len(res.IPC))
		for i := range cores {
			cores[i] = metrics.PerCore{BaselineIPC: baseline.IPC[i], IPC: res.IPC[i]}
		}
		ws := metrics.WeightedSpeedup(cores)
		label := "worst-case threshold"
		if useSvard {
			label = "Svärd per-row budgets"
		}
		fmt.Printf("%-12s %-22s WS=%.3f overhead=%.1f%% maxSlowdown=%.2f bitflips=%d\n",
			defense, label, ws, (1-ws)*100, metrics.MaxSlowdown(cores), res.Violations)
	}

	for _, d := range []string{"para", "rrs"} {
		eval(d, false)
		eval(d, true)
	}
	fmt.Println("\nSvärd recovers most of each defense's overhead without a single bitflip.")
}
