// remote-sweep drives a running svard-served instance end to end: it
// submits a campaign over HTTP, streams per-cell progress, waits for
// completion, and prints the folded Fig. 12/13 tables — the remote
// twin of running svard-sweep locally, sharing the daemon's warm cache
// with every other client.
//
// Usage:
//
//	svard-served -addr 127.0.0.1:8344 &           # start the service
//	remote-sweep -addr http://127.0.0.1:8344      # tiny default sweep
//	remote-sweep -addr ... -golden internal/sim/testdata/fig12_golden.json
//
// With -golden, the campaign replays exactly the fixture's sweep and
// the fetched cells are diffed field-by-field against the recorded
// ones; any mismatch exits non-zero. That makes this example double as
// the CI smoke test for the service's determinism guarantee: cells
// computed behind the scheduler, the shared worker pool, and the cache
// are bit-identical to a direct serial sim.RunFig12 call.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"reflect"
	"syscall"
	"time"

	"svard/internal/campaign"
	"svard/internal/client"
	"svard/internal/report"
	"svard/internal/server"
	"svard/internal/sim"
)

// goldenFile mirrors internal/sim's Fig. 12 fixture layout (options +
// cells), so -golden can rebuild the identical sweep.
type goldenFile struct {
	Base     sim.Config
	Mixes    [][]string
	NRHs     []float64
	Defenses []string
	Profiles []string
	Cells    []sim.Fig12Cell
}

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8344", "svard-served base URL")
		golden   = flag.String("golden", "", "fig12 golden fixture: replay its sweep and diff the cells (CI smoke mode)")
		name     = flag.String("name", "remote-sweep", "job name")
		priority = flag.Int("priority", 0, "job priority (higher runs first)")
		quiet    = flag.Bool("q", false, "suppress the progress stream")
		timeout  = flag.Duration("timeout", 10*time.Minute, "overall deadline")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx, cancel := context.WithTimeout(ctx, *timeout)
	defer cancel()

	var spec campaign.Spec
	var wantCells []sim.Fig12Cell
	if *golden != "" {
		b, err := os.ReadFile(*golden)
		if err != nil {
			fatal(err)
		}
		var g goldenFile
		if err := json.Unmarshal(b, &g); err != nil {
			fatal(fmt.Errorf("%s: %w", *golden, err))
		}
		spec = campaign.Spec{
			Figures:  []string{campaign.Fig12},
			Base:     g.Base,
			Mixes:    g.Mixes,
			NRHs:     g.NRHs,
			Defenses: g.Defenses,
			Profiles: g.Profiles,
		}
		wantCells = g.Cells
	} else {
		// A seconds-scale default sweep: two defenses, two thresholds.
		base := sim.DefaultConfig()
		base.InstrPerCore = 150_000
		base.WarmupPerCore = 30_000
		spec = campaign.Spec{
			Figures:  []string{campaign.Fig12},
			Base:     base,
			MixCount: 2,
			NRHs:     []float64{1024, 64},
			Defenses: []string{"para", "rrs"},
			Profiles: []string{"S0"},
		}
	}

	// The resilient client retries transient failures (5xx, dropped
	// connections) with jittered backoff and breaks the circuit on a
	// persistently dead endpoint — a CI worker restart mid-smoke is a
	// retry, not a red build. Wait additionally reconnects the event
	// stream from the last seen offset on its own.
	c := client.NewResilient(*addr, client.Policy{})
	if err := c.Health(ctx); err != nil {
		fatal(fmt.Errorf("service not reachable at %s: %w", *addr, err))
	}

	info, err := c.Submit(ctx, spec, *name, *priority)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "submitted %s (%d cells, fingerprint %s)\n",
		info.ID, info.Total, info.Fingerprint[:16])

	final, err := c.Wait(ctx, info.ID, func(ev server.Event) error {
		if *quiet {
			return nil
		}
		switch ev.Type {
		case "cell":
			fmt.Fprintf(os.Stderr, "\r%4d/%d  %-50s", ev.Done, ev.Total, ev.Label)
		case "state":
			fmt.Fprintf(os.Stderr, "\n%s: %s %s\n", info.ID, ev.State, ev.Error)
		}
		return nil
	})
	if err != nil {
		fatal(err)
	}
	if final.State != server.StateDone {
		fatal(fmt.Errorf("job %s ended %s: %s", final.ID, final.State, final.Error))
	}

	res, err := c.Result(ctx, final.ID)
	if err != nil {
		fatal(err)
	}
	names := spec.Defenses
	if len(names) == 0 {
		names = sim.DefenseNames
	}
	for _, d := range names {
		fmt.Println(report.Fig12(d, res.Fig12))
	}
	if len(res.Fig13) > 0 {
		fmt.Println(report.Fig13(res.Fig13))
	}
	fmt.Printf("job %s: %d cells, %d computed, %d served from cache", final.ID, res.Total, res.Computed, res.Served)
	if res.Resumed > 0 {
		fmt.Printf(" (%d resumed from an earlier journal)", res.Resumed)
	}
	fmt.Printf("\nserver cache totals: %s\n", res.Stats)

	if *golden != "" {
		if !reflect.DeepEqual(res.Fig12, wantCells) {
			fmt.Fprintf(os.Stderr, "FAIL: cells fetched over HTTP differ from the golden fixture\ngot  %+v\nwant %+v\n",
				res.Fig12, wantCells)
			os.Exit(1)
		}
		fmt.Println("golden check: cells served over HTTP are bit-identical to the fixture")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
