// Attack: run Fig. 13's adversarial access patterns — a row-cycling
// pattern that thrashes Hydra's counter cache and a pair hammer that
// maximizes RRS's swap rate — and show how Svärd changes the damage.
package main

import (
	"fmt"
	"log"

	"svard"
	"svard/internal/report"
	"svard/internal/sim"
)

func main() {
	base := svard.DefaultSimConfig()
	base.Cores = 4
	base.InstrPerCore = 60_000
	base.WarmupPerCore = 10_000

	cells, err := sim.RunFig13(sim.Fig13Options{
		Base:   base,
		NRH:    64,
		Benign: []string{"mcf06", "lbm06", "ycsb-a"},
		Progress: func(msg string) {
			fmt.Printf("  running %s...\n", msg)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(report.Fig13(cells))
	fmt.Println("Takeaway 9: Svärd mitigates the overheads both adversarial patterns")
	fmt.Println("inflict; RRS benefits far more than Hydra, whose counter-cache")
	fmt.Println("traffic is untouched by per-row thresholds.")
}
