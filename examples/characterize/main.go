// Characterize: run the paper's characterization pipeline on one
// module — spatial BER/HCfirst variation, RowPress, subarray reverse
// engineering with k-means + RowClone validation, and the spatial
// feature correlation analysis.
package main

import (
	"fmt"
	"log"

	"svard"
	"svard/internal/charz"
	"svard/internal/report"
	"svard/internal/reveng"
	"svard/internal/testbench"
)

func main() {
	module, err := svard.BuildModuleScaled("S4", 1, 4096, 4096)
	if err != nil {
		log.Fatal(err)
	}

	// Figure-style analyses (analytic full-bank sweeps).
	fmt.Println(report.Fig3(charz.Fig3(module, 1)))
	fmt.Println(report.Fig5(module.Spec.Label, charz.Fig5(module, 1)))
	fmt.Println(report.Fig7(module.Spec.Label, charz.Fig7(module, 2)))

	// Subarray reverse engineering (Key Insights 1 and 2): estimate the
	// subarray count by clustering, then validate candidate boundaries
	// with RowClone probes through the real command interface.
	fig8 := charz.Fig8(module, 4)
	fmt.Println(report.Fig8(module.Spec.Label, fig8))

	dev, model, err := module.NewDevice()
	if err != nil {
		log.Fatal(err)
	}
	bench := testbench.New(dev, model)
	fp := reveng.AnalyticFootprints(module.Geom)
	candidates := reveng.BoundariesFromFootprints(fp)
	surviving, err := reveng.ValidateBoundaries(bench, 1, candidates, 3)
	if err != nil {
		log.Fatal(err)
	}
	truth := module.Geom.SubarrayStarts()
	fmt.Printf("RowClone validation: %d candidate boundaries, %d survive, %d in ground truth\n\n",
		len(candidates), len(surviving), len(truth))

	// Spatial feature correlation (Fig. 9 / Table 3): S4's subarray
	// parity is its strong feature.
	d := charz.Fig9(module)
	fmt.Println(report.Fig9(d))
	for _, s := range d.Strong {
		fmt.Printf("strong feature: %v (F1 %.2f)\n", s.Feature, s.F1)
	}
}
