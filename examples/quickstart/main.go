// Quickstart: build a Table 5 module, hammer one row through the
// testbench exactly as Alg. 1 does, and capture its Svärd profile.
package main

import (
	"fmt"
	"log"

	"svard"
)

func main() {
	// Build the Samsung S0 module at a reduced bank size (fast); pass
	// svard.BuildModule for the full 64K-row banks.
	module, err := svard.BuildModuleScaled("S0", 1, 4096, 4096)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("module %s: %d banks x %d rows, %d subarrays/bank\n",
		module.Spec.Label, module.Geom.Banks(), module.Geom.RowsPerBank, module.Geom.Subarrays())

	// Mount it on the DRAM-Bender-style testbench.
	bench, model, err := svard.NewBench(module)
	if err != nil {
		log.Fatal(err)
	}

	// Measure one row's HCfirst: the sweep over the paper's 14 hammer
	// counts with the worst-case data pattern (Alg. 1).
	const bank = 1
	victim := 1000
	res, err := bench.MeasureHCFirst(bank, victim, svard.HammerLevels(), 36)
	if err != nil {
		log.Fatal(err)
	}
	levels := svard.HammerLevels()
	if res.FirstFlipIdx < len(levels) {
		fmt.Printf("row %d: WCDP=%v, first bitflip at %.0fK hammers (BER %.2e)\n",
			victim, res.WCDP, levels[res.FirstFlipIdx]/1024, res.BER[res.FirstFlipIdx])
	} else {
		fmt.Printf("row %d: no bitflip up to 128K hammers\n", victim)
	}
	// Cross-check against the analytic model (they agree by construction).
	fmt.Printf("analytic HCfirst: %.1fK hammers\n", model.HCFirst(bank, victim)/1024)

	// Capture the per-row vulnerability profile and build Svärd for a
	// future chip whose worst-case HCfirst is 512.
	prof := svard.CaptureProfile(module)
	sv, err := svard.NewSvard(prof, 512)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Svärd budgets around row %d:", victim)
	for r := victim - 2; r <= victim+2; r++ {
		fmt.Printf(" %d->%.0f", r, sv.ActivationBudget(bank, r))
	}
	fmt.Printf("\nworst-case budget (what a profile-oblivious defense must assume): %.0f\n", sv.MinBudget())
}
