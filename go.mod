module svard

go 1.24
