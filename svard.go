// Package svard is the public API of the Svärd reproduction: the
// HPCA 2024 paper "Spatial Variation-Aware Read Disturbance Defenses"
// rebuilt as a Go library.
//
// The package exposes three layers:
//
//   - Chip modelling and characterization: build any of the paper's 15
//     DDR4 modules (Table 5) as a calibrated device model, hammer it
//     through a DRAM-Bender-style testbench, and capture per-row read
//     disturbance vulnerability profiles.
//   - Svärd itself: per-row activation budgets served from a captured
//     profile, pluggable into any of the five implemented defenses
//     (AQUA, BlockHammer, Hydra, PARA, RRS).
//   - The evaluation harness: the cycle-level 8-core/DDR4 system of
//     Table 4 and the experiment drivers that regenerate the paper's
//     tables and figures.
//
// See the examples/ directory for runnable walkthroughs and
// EXPERIMENTS.md for the full experiment index.
package svard

import (
	"fmt"

	"svard/internal/core"
	"svard/internal/disturb"
	"svard/internal/dram"
	"svard/internal/profile"
	"svard/internal/sim"
	"svard/internal/testbench"
)

// Re-exported types of the public API surface.
type (
	// Module is a calibrated DDR4 module: geometry, in-DRAM row
	// scrambling, and a disturbance parameter set matching its Table 5
	// and Fig. 3 targets.
	Module = profile.Module
	// ModuleSpec is a Table 5 module description.
	ModuleSpec = profile.ModuleSpec
	// VulnProfile is a captured per-row vulnerability profile.
	VulnProfile = profile.VulnProfile
	// ScaledProfile is a profile scaled to a future-chip threshold.
	ScaledProfile = profile.ScaledProfile
	// Model is the read disturbance physics of one module.
	Model = disturb.Model
	// Device is a command-level DDR4 device (ACT/PRE/RD/WR/REF).
	Device = dram.Device
	// Bench is the DRAM-Bender-style testbench.
	Bench = testbench.Bench
	// Svard serves per-row activation budgets to defenses.
	Svard = core.Svard
	// Thresholds abstracts Svärd and the fixed worst-case baseline.
	Thresholds = core.Thresholds
	// SimConfig configures one full-system performance simulation.
	SimConfig = sim.Config
	// SimResult is a simulation outcome.
	SimResult = sim.Result
)

// Fixed is the profile-oblivious threshold configuration.
func Fixed(nRH float64) Thresholds { return core.Fixed(nRH) }

// ModuleLabels lists the 15 modules of Table 5.
func ModuleLabels() []string {
	specs := profile.Table5()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Label
	}
	return out
}

// BuildModule builds a full-size calibrated module by Table 5 label.
func BuildModule(label string, seed uint64) (*Module, error) {
	spec, ok := profile.SpecByLabel(label)
	if !ok {
		return nil, fmt.Errorf("svard: unknown module %q (see ModuleLabels)", label)
	}
	return profile.Build(spec, seed)
}

// BuildModuleScaled builds a module with a smaller bank, for fast
// experimentation with identical calibration targets.
func BuildModuleScaled(label string, seed uint64, rowsPerBank, cellsPerRow int) (*Module, error) {
	spec, ok := profile.SpecByLabel(label)
	if !ok {
		return nil, fmt.Errorf("svard: unknown module %q (see ModuleLabels)", label)
	}
	return profile.BuildScaled(spec, seed, rowsPerBank, cellsPerRow)
}

// NewBench mounts a module on the testbench, as the characterization
// infrastructure does (§4.1): device plus temperature control, with the
// retention-window budget enforced.
func NewBench(m *Module) (*Bench, *Model, error) {
	dev, model, err := m.NewDevice()
	if err != nil {
		return nil, nil, err
	}
	return testbench.New(dev, model), model, nil
}

// CaptureProfile profiles the paper's four tested banks of a module.
func CaptureProfile(m *Module) *VulnProfile {
	return profile.Capture(m.NewModel(), m.Spec.Label, profile.TestedBanks())
}

// NewSvard builds the Svärd mechanism over a profile scaled so its
// worst-case threshold equals nRH (§7.1's future-chip scaling).
func NewSvard(p *VulnProfile, nRH float64) (*Svard, error) {
	return core.New(p.ScaledTo(nRH))
}

// HammerLevels returns the paper's 14 tested hammer counts.
func HammerLevels() []float64 { return disturb.HammerLevels() }

// DefaultSimConfig returns the Table 4 evaluation system with
// scaled-down run lengths (see EXPERIMENTS.md).
func DefaultSimConfig() SimConfig { return sim.DefaultConfig() }

// RunSim executes one full-system simulation.
func RunSim(cfg SimConfig) (SimResult, error) { return sim.Run(cfg) }
