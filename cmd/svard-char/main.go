// svard-char regenerates the paper's characterization tables and
// figures (Table 5, Figs. 3-10, Table 3, and the §6.4 hardware costs)
// on the simulated module fleet.
//
// Usage:
//
//	svard-char [-modules H0,M1,S0] [-rows N] [-stride N] [-all] [-fig5] ...
//
// By default every module is built at a scaled bank size for speed; use
// -rows 0 for the full Table 5 bank sizes (slower; see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"svard/internal/charz"
	"svard/internal/core"
	"svard/internal/profile"
	"svard/internal/report"
)

func main() {
	var (
		modules = flag.String("modules", "", "comma-separated module labels (default: all 15)")
		rows    = flag.Int("rows", 8192, "rows per bank (0 = full Table 5 sizes)")
		cells   = flag.Int("cells", 8192, "cells per row for the model")
		stride  = flag.Int("stride", 1, "row sampling stride")
		seed    = flag.Uint64("seed", 1, "fleet seed")
		all     = flag.Bool("all", false, "run every experiment")
		fTab5   = flag.Bool("table5", false, "Table 5: module inventory")
		fFig3   = flag.Bool("fig3", false, "Fig. 3: BER across rows and banks")
		fFig4   = flag.Bool("fig4", false, "Fig. 4: BER by row location")
		fFig5   = flag.Bool("fig5", false, "Fig. 5: HCfirst distribution")
		fFig6   = flag.Bool("fig6", false, "Fig. 6: HCfirst by row location")
		fFig7   = flag.Bool("fig7", false, "Fig. 7: RowPress effect")
		fFig8   = flag.Bool("fig8", false, "Fig. 8: subarray clustering silhouette")
		fFig9   = flag.Bool("fig9", false, "Fig. 9 + Table 3: spatial feature F1")
		fFig10  = flag.Bool("fig10", false, "Fig. 10: aging")
		fCost   = flag.Bool("cost", false, "§6.4: Svärd hardware cost")
	)
	flag.Parse()
	if !*all && !(*fTab5 || *fFig3 || *fFig4 || *fFig5 || *fFig6 || *fFig7 || *fFig8 || *fFig9 || *fFig10 || *fCost) {
		*all = true
	}

	labels := selectedLabels(*modules)
	mods := make([]*profile.Module, 0, len(labels))
	for _, l := range labels {
		spec, ok := profile.SpecByLabel(l)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown module %q\n", l)
			os.Exit(1)
		}
		var (
			m   *profile.Module
			err error
		)
		if *rows <= 0 {
			fmt.Fprintf(os.Stderr, "building %s (full size)...\n", l)
			m, err = profile.Build(spec, *seed)
		} else {
			fmt.Fprintf(os.Stderr, "building %s (%d rows/bank)...\n", l, *rows)
			m, err = profile.BuildScaled(spec, *seed, *rows, *cells)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		mods = append(mods, m)
	}

	if *all || *fTab5 {
		var trows []charz.Table5Row
		for _, m := range mods {
			trows = append(trows, charz.Table5(m, *stride))
		}
		fmt.Println(report.Table5(trows))
	}
	if *all || *fFig3 {
		for _, m := range mods {
			fmt.Println(report.Fig3(charz.Fig3(m, *stride)))
		}
	}
	if *all || *fFig4 {
		for _, m := range mods {
			fmt.Println(report.Fig4(m.Spec.Label, charz.Fig4(m, 200), 20))
		}
	}
	if *all || *fFig5 {
		for _, m := range mods {
			fmt.Println(report.Fig5(m.Spec.Label, charz.Fig5(m, *stride)))
		}
	}
	if *all || *fFig6 {
		for _, m := range mods {
			pts := charz.Fig6(m, 24)
			fmt.Printf("Fig. 6 (%s): HCfirst (norm. to min) vs location samples:\n", m.Spec.Label)
			for _, p := range pts {
				fmt.Printf("  loc=%.2f norm=%.1fx\n", p.X, p.Y)
			}
			fmt.Println()
		}
	}
	if *all || *fFig7 {
		for _, m := range mods {
			fmt.Println(report.Fig7(m.Spec.Label, charz.Fig7(m, *stride)))
		}
	}
	if *all || *fFig8 {
		for _, m := range mods {
			fmt.Println(report.Fig8(m.Spec.Label, charz.Fig8(m, 4)))
		}
	}
	if *all || *fFig9 {
		var data []charz.Fig9Data
		for _, m := range mods {
			d := charz.Fig9(m)
			data = append(data, d)
			fmt.Println(report.Fig9(d))
		}
		fmt.Println(report.Table3(data))
	}
	if *all || *fFig10 {
		for _, m := range mods {
			if m.Spec.Label != "H3" && len(mods) > 1 {
				continue // the paper ages module H3
			}
			fmt.Println(report.Fig10(m.Spec.Label, charz.Fig10(m, 68, *stride)))
		}
	}
	if *all || *fCost {
		cfg := core.DefaultCostConfig()
		tc := core.TableImplementation(cfg)
		dc := core.DRAMBitsImplementation(cfg)
		fmt.Printf("§6.4 Svärd metadata cost:\n")
		fmt.Printf("  MC table:    %.3f mm²/bank, %.2f mm² total, %.2f%% of CPU die, %.2f ns lookup (hidden by ACT: %v)\n",
			tc.PerBankMM2, tc.TotalMM2, tc.CPUAreaFrac*100, tc.AccessNs, tc.HiddenByACT)
		fmt.Printf("  In-DRAM bits: %.4f%% array overhead, %.0f ns added latency\n\n",
			dc.ArrayOverheadFrac*100, dc.AddedLatencyNs)
	}
}

func selectedLabels(arg string) []string {
	if arg == "" {
		var out []string
		for _, s := range profile.Table5() {
			out = append(out, s.Label)
		}
		return out
	}
	parts := strings.Split(arg, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}
