// svard-served is the resident campaign service: one process holding
// the shared content-addressed result cache, the warm module pool, and
// a job scheduler, multiplexed over HTTP so many clients can submit
// sweeps without paying process startup or duplicating in-flight work.
//
// Usage:
//
//	svard-served [-addr HOST:PORT] [-cache-dir DIR] [-workers N]
//	             [-max-jobs N] [-lru N] [-pprof]
//	             [-fabric URL] [-advertise URL] [-worker-name NAME]
//	             [-remote-cache URL]
//
// With -fabric, the process also joins a svard-fabric coordinator as a
// dispatch worker: it registers, heartbeats at the coordinator's
// cadence (so its leases survive long cell computes), and re-registers
// whenever the coordinator forgets it. With -remote-cache (usually the
// same coordinator URL), the result cache gains a shared remote layer:
// results computed anywhere in the fleet are served from it, results
// computed here are published to it, and any remote failure degrades
// to local compute — never a failed sweep.
//
// Endpoints (see EXPERIMENTS.md, "Campaign service", for the full table
// and curl examples):
//
//	POST   /api/v1/jobs               submit a campaign.Spec as an async job
//	GET    /api/v1/jobs               list jobs
//	GET    /api/v1/jobs/{id}          inspect one job
//	POST   /api/v1/jobs/{id}/cancel   cancel (also DELETE /api/v1/jobs/{id})
//	GET    /api/v1/jobs/{id}/events   stream NDJSON per-cell progress
//	GET    /api/v1/jobs/{id}/result   folded Fig. 12/13 cells
//	GET    /api/v1/jobs/{id}/trace    flight-recorder timeline (Chrome trace JSON)
//	GET    /api/v1/cells/{key}        raw cached cell by config key
//	POST   /api/v1/key                config -> content-addressed key
//	GET    /healthz                   liveness + scheduler summary
//	GET    /metrics                   Prometheus text exposition
//
// SIGTERM/Ctrl-C shuts down gracefully: admission stops, every job is
// cancelled (in-flight cells finish — the service returns within one
// cell's latency), journals stay intact, and a resubmitted spec resumes
// from the cache.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"svard/internal/cache"
	"svard/internal/client"
	"svard/internal/dram"
	"svard/internal/fabric"
	"svard/internal/obs"
	"svard/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8344", "listen address")
		cacheDir  = flag.String("cache-dir", ".svard-cache", "result cache directory ('' = memory only)")
		workers   = flag.Int("workers", 0, "max concurrent simulations across all jobs (0 = GOMAXPROCS)")
		maxJobs   = flag.Int("max-jobs", 4, "max concurrently admitted jobs (queued jobs wait, highest priority first)")
		retain    = flag.Int("retain", 0, "max jobs kept queryable; oldest finished jobs evicted beyond it (0 = 256)")
		lru       = flag.Int("lru", 0, "in-memory LRU entries (0 = default)")
		grace     = flag.Duration("grace", 2*time.Minute, "graceful shutdown budget before exiting anyway")
		withPprof = flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/ (profile a live campaign service)")

		fabricURL   = flag.String("fabric", "", "svard-fabric coordinator URL to join as a dispatch worker")
		advertise   = flag.String("advertise", "", "this worker's base URL as reachable from the coordinator (default http://ADDR)")
		workerName  = flag.String("worker-name", "", "worker label in coordinator logs (default the advertise URL)")
		remoteCache = flag.String("remote-cache", "", "shared object-store URL for the cache's remote layer (usually the coordinator)")
	)
	flag.Parse()

	store, err := cache.Open(*cacheDir, *lru)
	if err != nil {
		fatal(err)
	}
	if *remoteCache != "" {
		store.SetRemote(client.NewCacheRemote(*remoteCache, client.Policy{}), cache.DefaultRemoteTimeout)
		fmt.Fprintf(os.Stderr, "svard-served: remote cache %s (failures degrade to local compute)\n", *remoteCache)
	}
	svc, err := server.New(server.Config{
		Store:         store,
		Workers:       *workers,
		MaxActiveJobs: *maxJobs,
		RetainJobs:    *retain,
	})
	if err != nil {
		fatal(err)
	}

	handler := svc.Handler()
	if *withPprof {
		// The service handler keeps the API namespace; pprof mounts
		// beside it so a live sweep can be profiled with
		// `go tool pprof http://ADDR/debug/pprof/profile`. Labeling each
		// cell's samples with its sweep coordinates only matters (and only
		// costs anything) when someone can actually take a profile.
		obs.EnableProfilingLabels()
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()

	where := *cacheDir
	if where == "" {
		where = "(memory only)"
	}
	fmt.Fprintf(os.Stderr, "svard-served: listening on %s, cache %s, stats: %s\n",
		*addr, where, store.Stats())
	fmt.Fprintf(os.Stderr, "svard-served: memory backends: %s\n",
		strings.Join(dram.BackendNames(), ", "))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *fabricURL != "" {
		adv := *advertise
		if adv == "" {
			adv = "http://" + *addr
		}
		agent := &fabric.Agent{
			Fabric:    *fabricURL,
			Advertise: adv,
			Name:      *workerName,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			},
		}
		go agent.Run(ctx)
		fmt.Fprintf(os.Stderr, "svard-served: joining fabric %s as %s\n", *fabricURL, adv)
	}

	select {
	case <-ctx.Done():
	case err := <-errc:
		fatal(err) // listener died before any signal
	}
	stop() // a second signal kills the process the default way

	fmt.Fprintln(os.Stderr, "svard-served: shutting down (in-flight cells finish; journals stay resumable)")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	// Jobs first (they are the long pole), then the listener: streaming
	// clients see their terminal events before connections close.
	if err := svc.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "svard-served: %v\n", err)
	}
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "svard-served: http shutdown: %v\n", err)
	}
	fmt.Fprintf(os.Stderr, "svard-served: bye; cache %s\n", store.Stats())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
