// svard-trace inspects the flight-recorder timelines that svard-sweep
// -trace and svard-served's /api/v1/jobs/{id}/trace emit (Chrome
// trace_event JSON — the same files open in chrome://tracing and
// Perfetto). It answers the questions a timeline viewer is clumsy at:
// which cells were slowest, where the time went phase by phase, what
// the engine counters totalled, and how two cells or two runs differ.
//
// Usage:
//
//	svard-trace [-top N] trace.json              summary: phases, slowest cells, counters
//	svard-trace old.json new.json                counter totals diff between two runs
//	svard-trace -diff-cells 'A::B' trace.json    counter diff between two cells (index or label substring)
//	svard-trace -check trace.json                validate (parses, spans nest); exit 1 on failure
//	svard-trace -glossary                        print the counter glossary and exit
//
// Cell selectors for -diff-cells are either a 0-based timeline index
// ("3") or a case-insensitive label substring ("para nRH=64"); an
// ambiguous substring is an error listing the candidates.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"svard/internal/obs"
	"svard/internal/report"
)

func main() {
	var (
		top       = flag.Int("top", 10, "how many slowest cells to list in the summary")
		check     = flag.Bool("check", false, "validate the trace (JSON parses, spans nest) and exit; non-zero on failure")
		diffCells = flag.String("diff-cells", "", "diff two cells of one trace: 'SEL::SEL', each a 0-based index or label substring")
		glossary  = flag.Bool("glossary", false, "print the counter glossary and exit")
	)
	flag.Parse()

	if *glossary {
		fmt.Print(glossaryTable())
		return
	}

	switch {
	case *check:
		if flag.NArg() != 1 {
			usage()
		}
		runCheck(flag.Arg(0))
	case *diffCells != "":
		if flag.NArg() != 1 {
			usage()
		}
		runDiffCells(flag.Arg(0), *diffCells)
	case flag.NArg() == 1:
		runSummary(flag.Arg(0), *top)
	case flag.NArg() == 2:
		runDiffRuns(flag.Arg(0), flag.Arg(1))
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: svard-trace [-top N] trace.json
       svard-trace old.json new.json
       svard-trace -diff-cells 'SEL::SEL' trace.json
       svard-trace -check trace.json
       svard-trace -glossary`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func load(path string) *obs.File {
	f, err := obs.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	return f
}

// runCheck is the CI gate: the file must parse as trace JSON and its
// spans must strictly nest per lane (Perfetto renders overlapping
// spans misleadingly instead of erroring, so CI catches it here).
func runCheck(path string) {
	f := load(path)
	if err := f.Validate(); err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	cells := f.CellSummaries()
	fmt.Printf("%s: ok — %d events, %d cells, spans nest\n", path, len(f.TraceEvents), len(cells))
}

func runSummary(path string, top int) {
	f := load(path)
	cells := f.CellSummaries()
	if len(cells) == 0 {
		fmt.Printf("%s: no cell events\n", path)
		return
	}

	// Wall span: first cell start to last cell end, in timeline µs.
	wallEnd := 0.0
	var busy float64
	lanes := map[int]bool{}
	for _, c := range cells {
		if end := c.TsUs + c.DurUs; end > wallEnd {
			wallEnd = end
		}
		busy += c.DurUs
		lanes[c.Tid] = true
	}
	fmt.Printf("%s: %d cells over %d lanes, wall %s, busy %s\n\n",
		path, len(cells), len(lanes), fmtUs(wallEnd-cells[0].TsUs), fmtUs(busy))

	// Phase breakdown: where the busy time went, across all cells.
	// Wait is reported beside the phases — it is queueing before the
	// cell's execution interval, not part of it.
	phaseTotal := map[string]float64{}
	var waitTotal float64
	for _, c := range cells {
		waitTotal += c.WaitUs
		for name, dur := range c.Phases {
			phaseTotal[name] += dur
		}
	}
	pt := report.Table{
		Title:   "Phase breakdown (all cells)",
		Headers: []string{"phase", "total", "% busy", "mean/cell"},
	}
	n := float64(len(cells))
	for p := obs.PhaseLookup; p < obs.Phase(obs.NumPhases); p++ {
		tot := phaseTotal[p.String()]
		pct := 0.0
		if busy > 0 {
			pct = tot / busy * 100
		}
		pt.Add(p.String(), fmtUs(tot), fmt.Sprintf("%.1f%%", pct), fmtUs(tot/n))
	}
	pt.Add("(wait)", fmtUs(waitTotal), "-", fmtUs(waitTotal/n))
	fmt.Println(pt.String())

	// Slowest cells.
	byDur := make([]obs.CellSummary, len(cells))
	copy(byDur, cells)
	sort.SliceStable(byDur, func(a, b int) bool { return byDur[a].DurUs > byDur[b].DurUs })
	if top > len(byDur) {
		top = len(byDur)
	}
	st := report.Table{
		Title:   fmt.Sprintf("Slowest %d cells", top),
		Headers: []string{"#", "cell", "outcome", "dur", "wait", "run", "sim ticks", "skipped"},
	}
	for i, c := range byDur[:top] {
		label := c.Label
		if c.Err != "" {
			label += " (error: " + c.Err + ")"
		}
		st.Add(strconv.Itoa(i+1), label, c.Outcome, fmtUs(c.DurUs), fmtUs(c.WaitUs),
			fmtUs(c.Phases[obs.PhaseRun.String()]),
			strconv.FormatUint(c.Counter["sim_ticks"], 10),
			strconv.FormatUint(c.Counter["skipped_cycles"], 10))
	}
	fmt.Println(st.String())

	// Counter totals, in glossary order with the help text.
	totals := sumCounters(cells)
	ct := report.Table{
		Title:   "Counter totals",
		Headers: []string{"counter", "total", "what it counts"},
	}
	for _, info := range obs.Glossary() {
		ct.Add(info.Name, strconv.FormatUint(totals[info.Name], 10), info.Help)
	}
	fmt.Print(ct.String())
}

// runDiffRuns compares two trace files' counter totals — the "did this
// change make the engine do more work" question, independent of wall
// time (which shared machines make noisy).
func runDiffRuns(oldPath, newPath string) {
	oldTotals := sumCounters(load(oldPath).CellSummaries())
	newTotals := sumCounters(load(newPath).CellSummaries())
	fmt.Print(diffTable(
		fmt.Sprintf("Counter totals: %s vs %s", oldPath, newPath),
		oldPath, newPath, oldTotals, newTotals))
}

// runDiffCells compares two cells within one trace — e.g. the same mix
// at two nRH values, to see which engine work scaled.
func runDiffCells(path, spec string) {
	parts := strings.SplitN(spec, "::", 2)
	if len(parts) != 2 {
		fatal(fmt.Errorf("bad -diff-cells %q: want 'SEL::SEL' (0-based index or label substring)", spec))
	}
	cells := load(path).CellSummaries()
	a, err := selectCell(cells, parts[0])
	if err != nil {
		fatal(err)
	}
	b, err := selectCell(cells, parts[1])
	if err != nil {
		fatal(err)
	}
	fmt.Printf("A: %s (%s, dur %s)\nB: %s (%s, dur %s)\n\n",
		a.Label, a.Outcome, fmtUs(a.DurUs), b.Label, b.Outcome, fmtUs(b.DurUs))
	fmt.Print(diffTable("Counter diff", "A", "B", a.Counter, b.Counter))
}

// selectCell resolves an index or label substring to exactly one cell.
func selectCell(cells []obs.CellSummary, sel string) (obs.CellSummary, error) {
	if i, err := strconv.Atoi(sel); err == nil {
		if i < 0 || i >= len(cells) {
			return obs.CellSummary{}, fmt.Errorf("cell index %d out of range (have %d cells)", i, len(cells))
		}
		return cells[i], nil
	}
	var matches []int
	for i, c := range cells {
		if strings.Contains(strings.ToLower(c.Label), strings.ToLower(sel)) {
			matches = append(matches, i)
		}
	}
	switch len(matches) {
	case 1:
		return cells[matches[0]], nil
	case 0:
		return obs.CellSummary{}, fmt.Errorf("no cell label contains %q", sel)
	default:
		lines := make([]string, 0, 5)
		for _, i := range matches {
			lines = append(lines, fmt.Sprintf("  %d: %s", i, cells[i].Label))
			if len(lines) == 5 {
				break
			}
		}
		return obs.CellSummary{}, fmt.Errorf("%q matches %d cells; use an index:\n%s",
			sel, len(matches), strings.Join(lines, "\n"))
	}
}

func sumCounters(cells []obs.CellSummary) map[string]uint64 {
	out := map[string]uint64{}
	for _, c := range cells {
		for k, v := range c.Counter {
			out[k] += v
		}
	}
	return out
}

// diffTable renders old/new counter maps side by side in glossary
// order, skipping counters zero on both sides.
func diffTable(title, oldName, newName string, oldC, newC map[string]uint64) string {
	t := report.Table{
		Title:   title,
		Headers: []string{"counter", oldName, newName, "delta"},
	}
	for _, info := range obs.Glossary() {
		o, n := oldC[info.Name], newC[info.Name]
		if o == 0 && n == 0 {
			continue
		}
		t.Add(info.Name, strconv.FormatUint(o, 10), strconv.FormatUint(n, 10), fmtDelta(o, n))
	}
	return t.String()
}

func fmtDelta(o, n uint64) string {
	d := int64(n) - int64(o)
	if o == 0 {
		if d == 0 {
			return "0"
		}
		return fmt.Sprintf("%+d", d)
	}
	return fmt.Sprintf("%+d (%+.1f%%)", d, (float64(n)/float64(o)-1)*100)
}

func glossaryTable() string {
	t := report.Table{
		Title:   "Flight-recorder counters",
		Headers: []string{"counter", "what it counts"},
	}
	for _, info := range obs.Glossary() {
		t.Add(info.Name, info.Help)
	}
	return t.String()
}

// fmtUs renders a microsecond quantity human-first.
func fmtUs(us float64) string {
	switch {
	case us >= 1e6:
		return fmt.Sprintf("%.2fs", us/1e6)
	case us >= 1e3:
		return fmt.Sprintf("%.2fms", us/1e3)
	default:
		return fmt.Sprintf("%.0fµs", us)
	}
}
