// svard-benchdiff compares two Go benchmark outputs (benchstat's input
// format — the BENCH_sim.json artifact CI uploads) and reports per-
// benchmark changes in time/op and allocs/op. CI runs it against the
// previous run's artifact and turns regressions beyond a threshold
// into GitHub Actions warning annotations, so a perf or allocation
// regression is visible on the pull request without failing the build
// (shared runners make time/op noisy; allocs/op is deterministic).
//
// Usage:
//
//	svard-benchdiff [-threshold 10] [-gha] old.txt new.txt
//
// Exit status is 0 unless the inputs are unreadable; regressions warn.
package main

import (
	"flag"
	"fmt"
	"os"

	"svard/internal/benchdiff"
)

func main() {
	var (
		threshold = flag.Float64("threshold", 10, "warn when time/op or allocs/op regresses more than this percentage")
		gha       = flag.Bool("gha", false, "emit GitHub Actions ::warning:: annotations for regressions")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: svard-benchdiff [-threshold PCT] [-gha] old.txt new.txt")
		os.Exit(2)
	}
	oldB, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	newB, err := os.ReadFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	diffs := benchdiff.Compare(benchdiff.Parse(string(oldB)), benchdiff.Parse(string(newB)))
	if len(diffs) == 0 {
		fmt.Println("svard-benchdiff: no common benchmarks")
		return
	}
	fmt.Print(benchdiff.Table(diffs))
	for _, d := range diffs {
		for _, r := range d.Regressions(*threshold) {
			if *gha {
				fmt.Printf("::warning title=benchmark regression::%s\n", r)
			} else {
				fmt.Printf("WARNING: %s\n", r)
			}
		}
	}
}
