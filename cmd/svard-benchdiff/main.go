// svard-benchdiff compares two Go benchmark outputs (benchstat's input
// format — the BENCH_sim.json artifact CI uploads) and reports per-
// benchmark changes in time/op, allocs/op, and B/op. CI runs it against
// the previous run's artifact and turns regressions beyond a threshold
// into GitHub Actions warning annotations; with -fail-on, regressions
// on the named metrics fail the build instead of merely warning (shared
// runners make time/op noisy; allocs/op and B/op are deterministic, so
// they are safe to hard-fail on).
//
// Usage:
//
//	svard-benchdiff [-threshold 10] [-gha] [-fail-on allocs,bytes] old.txt new.txt
//
// -fail-on takes a comma-separated subset of time, allocs, bytes — or
// "any" for all three. Exit status: 0 clean, 1 when a -fail-on metric
// regressed (or an input is unreadable), 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"svard/internal/benchdiff"
)

func main() {
	var (
		threshold = flag.Float64("threshold", 10, "warn when time/op, allocs/op, or B/op regresses more than this percentage")
		gha       = flag.Bool("gha", false, "emit GitHub Actions ::warning::/::error:: annotations for regressions")
		failOn    = flag.String("fail-on", "", "comma-separated metrics whose regressions fail the build: time, allocs, bytes, or 'any'")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: svard-benchdiff [-threshold PCT] [-gha] [-fail-on METRICS] old.txt new.txt")
		os.Exit(2)
	}
	fatal, err := parseFailOn(*failOn)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	oldS := readSamples(flag.Arg(0), "baseline")
	newS := readSamples(flag.Arg(1), "current")
	diffs := benchdiff.Compare(oldS, newS)
	if len(diffs) == 0 {
		// Both inputs parsed but share no benchmark names: the comparison
		// is vacuous, which in CI means the artifact wiring is wrong —
		// fail loudly rather than green-wash the gate.
		fmt.Fprintf(os.Stderr, "svard-benchdiff: %s and %s have no benchmarks in common; nothing was compared\n",
			flag.Arg(0), flag.Arg(1))
		os.Exit(1)
	}
	fmt.Print(benchdiff.Table(diffs))
	failed := false
	for _, d := range diffs {
		for _, r := range d.TypedRegressions(*threshold) {
			hard := fatal[r.Metric]
			failed = failed || hard
			switch {
			case *gha && hard:
				fmt.Printf("::error title=benchmark regression::%s\n", r.Message)
			case *gha:
				fmt.Printf("::warning title=benchmark regression::%s\n", r.Message)
			case hard:
				fmt.Printf("FAIL: %s\n", r.Message)
			default:
				fmt.Printf("WARNING: %s\n", r.Message)
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

// readSamples loads and parses one benchmark file, exiting non-zero
// with a message naming the file when it is missing or contains no
// parseable benchmark lines — a silently empty baseline would make
// every comparison pass vacuously.
func readSamples(path, role string) []benchdiff.Sample {
	b, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svard-benchdiff: %s artifact unreadable: %v\n", role, err)
		os.Exit(1)
	}
	s := benchdiff.Parse(string(b))
	if len(s) == 0 {
		fmt.Fprintf(os.Stderr, "svard-benchdiff: %s artifact %s contains no benchmark lines (missing or unparseable)\n", role, path)
		os.Exit(1)
	}
	return s
}

// parseFailOn maps the -fail-on flag to the metric set that fails the
// build. Unknown metric names are usage errors, not silent no-ops: a
// typo in CI config must not quietly disable the gate.
func parseFailOn(s string) (map[benchdiff.Metric]bool, error) {
	out := map[benchdiff.Metric]bool{}
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "any" {
			for _, m := range benchdiff.Metrics {
				out[m] = true
			}
			continue
		}
		known := false
		for _, m := range benchdiff.Metrics {
			if part == string(m) {
				out[m] = true
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("svard-benchdiff: unknown -fail-on metric %q (have time, allocs, bytes, any)", part)
		}
	}
	return out, nil
}
