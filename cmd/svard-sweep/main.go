// svard-sweep runs the performance-evaluation sweeps (Fig. 12, Fig. 13)
// as resumable campaigns over the content-addressed result cache: every
// simulation cell persists under -cache-dir keyed by its full
// configuration, so re-running a campaign — after a crash, or with one
// changed knob — recomputes only the cells that have never been
// computed, and an interrupted sweep restarted with -resume picks up
// exactly where it stopped with bit-identical results.
//
// Usage:
//
//	svard-sweep [-fig12] [-fig13] [-cache-dir DIR] [-resume] [-parallel N]
//	            [-mixes N | -mix a,b,... (repeatable)] [-instr N] [-warmup N]
//	            [-cores N] [-rows N] [-seed N]
//	            [-defenses para,rrs] [-nrhs 1024,64] [-profiles S0,M0]
//	            [-backends ddr4-3200,hbm2] [-benign mcf06,...] [-nrh13 64]
//	            [-population N] [-population-seed S] [-population-chunk N]
//	            [-bands-json FILE]
//	            [-temporal epoch=65536,drift=-0.05,sigma=0.1] [-temporal-intervals 0,16,64]
//	            [-spec campaign.json] [-print-spec] [-q]
//
// A campaign can also be declared as a JSON file (-spec); explicit
// flags override the file's fields. -print-spec prints the normalized
// campaign (suitable as a -spec file) without running anything. After a
// run, the campaign's figures print to stdout followed by the cache
// statistics (hits, misses, corrupt entries recomputed).
//
// Examples:
//
//	svard-sweep -fig12 -nrhs 1024,64 -defenses para,rrs   # small sweep, cache cold
//	svard-sweep -fig12 -nrhs 1024,64 -defenses para,rrs   # same again: all cache hits
//	svard-sweep -fig12 -mixes 120 -instr 200000000        # paper scale; Ctrl-C it...
//	svard-sweep -fig12 -mixes 120 -instr 200000000 -resume # ...and pick it back up
//	svard-sweep -population 1000 -bands-json bands.json   # Monte Carlo confidence bands
//	svard-sweep -temporal epoch=65536,drift=-0.05,sigma=0.1  # margin erosion vs re-calibration interval
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"svard/internal/cache"
	"svard/internal/campaign"
	"svard/internal/dram"
	"svard/internal/obs"
	"svard/internal/report"
	"svard/internal/sim"
	"svard/internal/temporal"
	"svard/internal/trace"
)

func main() {
	var (
		specFile  = flag.String("spec", "", "campaign spec JSON file (flags override its fields)")
		printSpec = flag.Bool("print-spec", false, "print the normalized campaign spec as JSON and exit")

		cacheDir = flag.String("cache-dir", ".svard-cache", "result cache directory ('' disables persistence)")
		resume   = flag.Bool("resume", false, "resume this campaign's interrupted journal")
		parallel = flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS, 1 = serial)")

		fig12 = flag.Bool("fig12", false, "run the Fig. 12 sweep")
		fig13 = flag.Bool("fig13", false, "run the Fig. 13 adversarial evaluation")

		mixes    = flag.Int("mixes", 4, "number of drawn workload mixes (paper: 120)")
		instr    = flag.Uint64("instr", 150_000, "instructions per core (paper: 200M)")
		warmup   = flag.Uint64("warmup", 30_000, "warmup instructions per core (paper: 100M)")
		cores    = flag.Int("cores", 8, "cores per mix")
		rows     = flag.Int("rows", 8192, "rows per bank")
		seed     = flag.Uint64("seed", 1, "seed")
		defenses = flag.String("defenses", "", "comma-separated defense subset (default all five)")
		backends = flag.String("backends", "", "comma-separated memory backends to sweep (default ddr4-3200; have "+strings.Join(dram.BackendNames(), ", ")+")")
		nrhs     = flag.String("nrhs", "", "comma-separated HCfirst sweep (default 4096..64)")
		profiles = flag.String("profiles", "", "comma-separated module profiles (default S0,M0,H1)")
		benign   = flag.String("benign", "", "comma-separated Fig. 13 benign workloads")
		nrh13    = flag.Float64("nrh13", 0, "Fig. 13 HCfirst (default 64)")
		quiet    = flag.Bool("q", false, "suppress progress output")

		popSize  = flag.Int("population", 0, "sweep a synthetic module population of this size (Fig. 12 confidence bands instead of per-profile points)")
		popSeed  = flag.Uint64("population-seed", 1, "population seed: any module of the population is reconstructible from (seed, index)")
		popChunk = flag.Int("population-chunk", 0, "modules resident per population chunk (memory knob, 0 = default 16; never affects results)")
		bandsOut = flag.String("bands-json", "", "write the population band cells as JSON to this file")

		temporalSpec      = flag.String("temporal", "", "temporal process spec, e.g. epoch=65536,drift=-0.05,sigma=0.1 (margin-erosion sweep instead of Fig. 12 points)")
		temporalIntervals = flag.String("temporal-intervals", "", "comma-separated re-calibration intervals in epochs (default 0,16,64)")

		traceOut = flag.String("trace", "", "write a flight-recorder timeline of the campaign (Chrome trace_event JSON for chrome://tracing / Perfetto / svard-trace) to this file")
	)
	var explicitMixes [][]string
	flag.Func("mix", "one explicit workload mix, comma-separated (repeatable; overrides -mixes)", func(s string) error {
		mix, err := trace.ParseMix(s, 0)
		if err != nil {
			return err
		}
		explicitMixes = append(explicitMixes, mix)
		return nil
	})
	flag.Parse()

	// Seed the sizing knobs from the flag defaults before loading any spec
	// file, so a file that omits them declares the same campaign (and hits
	// the same cache keys) as the equivalent flag invocation; fields the
	// file does set override the seed, and explicitly set flags override
	// the file below.
	spec := campaign.Spec{Base: sim.DefaultConfig()}
	spec.Base.InstrPerCore = *instr
	spec.Base.WarmupPerCore = *warmup
	spec.Base.Cores = *cores
	spec.Base.RowsPerBank = *rows
	spec.Base.Seed = *seed
	if *specFile != "" {
		b, err := os.ReadFile(*specFile)
		if err != nil {
			fatal(err)
		}
		if err := json.Unmarshal(b, &spec); err != nil {
			fatal(fmt.Errorf("%s: %w", *specFile, err))
		}
	}

	// Explicit flags override the spec file.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	fromSpecFile := *specFile != ""
	// -mixes draws mixes only when none are pinned explicitly; silently
	// sweeping the pinned mixes while the user asked for N drawn ones
	// would misreport the campaign.
	if set["mixes"] && (len(explicitMixes) > 0 || len(spec.Mixes) > 0) {
		fatal(fmt.Errorf("-mixes conflicts with explicitly pinned mixes (from -mix or the spec file); drop one"))
	}
	applyIf := func(name string, apply func()) {
		if set[name] || !fromSpecFile {
			apply()
		}
	}
	applyIf("mixes", func() { spec.MixCount = *mixes })
	applyIf("instr", func() { spec.Base.InstrPerCore = *instr })
	applyIf("warmup", func() { spec.Base.WarmupPerCore = *warmup })
	applyIf("cores", func() { spec.Base.Cores = *cores })
	applyIf("rows", func() { spec.Base.RowsPerBank = *rows })
	applyIf("seed", func() { spec.Base.Seed = *seed })
	applyIf("nrh13", func() { spec.NRH13 = *nrh13 })
	if len(explicitMixes) > 0 {
		spec.Mixes = explicitMixes
	}
	if set["defenses"] {
		spec.Defenses = splitList(*defenses)
	}
	if set["backends"] {
		spec.Backends = splitList(*backends)
	}
	if set["profiles"] {
		spec.Profiles = splitList(*profiles)
	}
	if set["benign"] {
		spec.Benign = splitList(*benign)
	}
	if set["nrhs"] {
		spec.NRHs = nil
		for _, s := range splitList(*nrhs) {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				fatal(err)
			}
			spec.NRHs = append(spec.NRHs, v)
		}
	}
	if *fig12 || *fig13 {
		spec.Figures = nil
		if *fig12 {
			spec.Figures = append(spec.Figures, campaign.Fig12)
		}
		if *fig13 {
			spec.Figures = append(spec.Figures, campaign.Fig13)
		}
	}
	if set["population"] || set["population-seed"] {
		spec.Population = &campaign.PopulationSpec{Seed: *popSeed, Size: *popSize}
	}
	if set["temporal"] {
		proc, err := temporal.ParseSpec(*temporalSpec)
		if err != nil {
			fatal(err)
		}
		spec.Temporal = &campaign.TemporalSpec{Process: proc}
	}
	if set["temporal-intervals"] {
		if spec.Temporal == nil {
			fatal(fmt.Errorf("-temporal-intervals requires -temporal (or a spec file with a temporal block)"))
		}
		spec.Temporal.Intervals = nil
		for _, s := range splitList(*temporalIntervals) {
			v, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				fatal(err)
			}
			spec.Temporal.Intervals = append(spec.Temporal.Intervals, v)
		}
	}
	// Population and temporal campaigns only sweep the Fig. 12 grid; when
	// the figure flags are silent, pin Fig. 12 rather than letting the
	// default (both figures) fail validation.
	if (spec.Population != nil || spec.Temporal != nil) && len(spec.Figures) == 0 {
		spec.Figures = []string{campaign.Fig12}
	}

	if err := spec.Validate(); err != nil {
		fatal(err)
	}
	if *printSpec {
		// Print the normalized campaign: with the figures and the drawn
		// mixes pinned, the emitted file reproduces this exact sweep even
		// if the drawing defaults ever change.
		b, err := json.MarshalIndent(spec.Normalized(), "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(b))
		return
	}

	store, err := cache.Open(*cacheDir, 0)
	if err != nil {
		fatal(err)
	}
	if !*quiet {
		jobs, err := spec.Jobs()
		if err != nil {
			fatal(err)
		}
		where := *cacheDir
		if where == "" {
			where = "(memory only)"
		}
		fmt.Fprintf(os.Stderr, "campaign %s: %d simulation jobs, cache %s\n",
			spec.Fingerprint()[:16], len(jobs), where)
	}

	eng := &campaign.Engine{
		Store:           store,
		Workers:         *parallel,
		Resume:          *resume,
		PopulationChunk: *popChunk,
	}
	if *traceOut != "" {
		eng.Trace = obs.NewTrace()
	}
	if !*quiet {
		eng.Progress = func(msg string) { fmt.Fprintf(os.Stderr, "\r%-60s", msg) }
	}
	// Ctrl-C / SIGTERM cancels the campaign promptly: in-flight cells
	// finish (and are cached and journaled), nothing new starts, and the
	// journal stays valid for -resume. Deregistering on the first signal
	// restores default handling, so a second Ctrl-C during the drain
	// kills the process instead of being swallowed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()
	out, err := eng.RunCtx(ctx, spec)
	if !*quiet {
		fmt.Fprintln(os.Stderr)
	}
	// Write the timeline even on an interrupted run: a partial trace of
	// what did execute is exactly what you want when diagnosing why a
	// campaign stalled.
	if *traceOut != "" {
		if terr := eng.Trace.WriteFile(*traceOut); terr != nil {
			fmt.Fprintln(os.Stderr, terr)
		} else if !*quiet {
			fmt.Fprintf(os.Stderr, "trace written to %s (%d cells; inspect with svard-trace, or open in chrome://tracing)\n",
				*traceOut, eng.Trace.Len())
		}
	}
	if err != nil {
		if *cacheDir != "" {
			fmt.Fprintf(os.Stderr, "campaign interrupted (cache %s; re-run with -resume to continue): ", *cacheDir)
		}
		fatal(err)
	}

	if out.Fig12 != nil {
		names := spec.Defenses
		if len(names) == 0 {
			names = sim.DefenseNames
		}
		for _, d := range names {
			fmt.Println(report.Fig12(d, out.Fig12))
		}
	}
	if out.Bands != nil {
		names := spec.Defenses
		if len(names) == 0 {
			names = sim.DefenseNames
		}
		for _, d := range names {
			fmt.Println(report.Bands(d, out.Bands))
		}
		if *bandsOut != "" {
			b, err := report.BandsJSON(out.Bands)
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*bandsOut, append(b, '\n'), 0o644); err != nil {
				fatal(err)
			}
			if !*quiet {
				fmt.Fprintf(os.Stderr, "bands written to %s\n", *bandsOut)
			}
		}
	}
	if out.Erosion != nil {
		fmt.Println(report.Erosion(out.Erosion))
	}
	if out.Fig13 != nil {
		fmt.Println(report.Fig13(out.Fig13))
	}

	fmt.Printf("campaign: %d jobs, %d computed, %d served from cache", out.Total, out.Computed, out.Served)
	if out.Resumed > 0 {
		fmt.Printf(", %d resumed from a previous run's journal", out.Resumed)
	}
	fmt.Printf("\ncache: %s\n", out.Stats)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}
