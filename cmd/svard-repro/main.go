// svard-repro runs the end-to-end reproduction: the characterization
// campaign on a representative module subset followed by the
// performance evaluation, printing every table and figure. It is the
// one-command version of EXPERIMENTS.md.
package main

import (
	"fmt"
	"os"
	"os/exec"
)

func main() {
	run := func(name string, args ...string) {
		fmt.Printf("==> %s %v\n\n", name, args)
		cmd := exec.Command(name, args...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			os.Exit(1)
		}
	}
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	_ = self
	// The sibling binaries are expected on PATH or built via `go run`.
	if _, err := exec.LookPath("svard-char"); err == nil {
		run("svard-char", "-all", "-stride", "2")
		run("svard-perf", "-mixes", "3", "-instr", "120000")
		return
	}
	run("go", "run", "./cmd/svard-char", "-all", "-stride", "2")
	run("go", "run", "./cmd/svard-perf", "-mixes", "3", "-instr", "120000")
}
