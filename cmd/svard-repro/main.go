// svard-repro runs the end-to-end reproduction: the characterization
// campaign on a representative module subset followed by the
// performance evaluation, printing every table and figure. It is the
// one-command version of EXPERIMENTS.md.
//
// Usage:
//
//	svard-repro [-parallel N]
//
// -parallel is forwarded to svard-perf's experiment sweeps (0 uses
// every core, 1 forces the serial order).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
)

func main() {
	parallel := flag.Int("parallel", 0, "max concurrent simulations in the perf sweeps (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()

	run := func(name string, args ...string) {
		fmt.Printf("==> %s %v\n\n", name, args)
		cmd := exec.Command(name, args...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			os.Exit(1)
		}
	}
	perfArgs := []string{"-mixes", "3", "-instr", "120000", "-parallel", strconv.Itoa(*parallel)}
	// The sibling binaries are expected on PATH or built via `go run`.
	if _, err := exec.LookPath("svard-char"); err == nil {
		run("svard-char", "-all", "-stride", "2")
		run("svard-perf", perfArgs...)
		return
	}
	run("go", "run", "./cmd/svard-char", "-all", "-stride", "2")
	run("go", append([]string{"run", "./cmd/svard-perf"}, perfArgs...)...)
}
