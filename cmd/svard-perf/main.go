// svard-perf regenerates the paper's performance evaluation: Fig. 12
// (five defenses with and without Svärd across worst-case HCfirst
// values), Obsv. 15's residual overheads, and Fig. 13 (adversarial
// access patterns).
//
// Usage:
//
//	svard-perf [-mixes N] [-instr N] [-defenses para,rrs] [-nrhs 1024,64] [-fig13] [-parallel N]
//	           [-backend hbm2] [-cpuprofile cpu.prof] [-memprofile mem.prof]
//
// Defaults are scaled for minutes-scale runs; raise -mixes/-instr toward
// the paper's 120 mixes x 200M instructions as budget allows (see
// EXPERIMENTS.md).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"

	"svard/internal/cache"
	"svard/internal/dram"
	"svard/internal/obs"
	"svard/internal/report"
	"svard/internal/sim"
	"svard/internal/trace"
)

func main() {
	var (
		mixes    = flag.Int("mixes", 4, "number of 8-core workload mixes (paper: 120)")
		instr    = flag.Uint64("instr", 150_000, "instructions per core (paper: 200M)")
		warmup   = flag.Uint64("warmup", 30_000, "warmup instructions per core (paper: 100M)")
		cores    = flag.Int("cores", 8, "cores per mix")
		rows     = flag.Int("rows", 8192, "rows per bank")
		seed     = flag.Uint64("seed", 1, "seed")
		defenses = flag.String("defenses", "", "comma-separated defense subset (default all)")
		backend  = flag.String("backend", "", "memory backend preset (default ddr4-3200; have "+strings.Join(dram.BackendNames(), ", ")+")")
		nrhs     = flag.String("nrhs", "", "comma-separated HCfirst sweep (default 4096..64)")
		fig12    = flag.Bool("fig12", false, "run Fig. 12")
		fig13    = flag.Bool("fig13", false, "run Fig. 13 (adversarial patterns)")
		obsv15   = flag.Bool("obsv15", false, "print Obsv. 15 overheads at HCfirst=64")
		parallel = flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS, 1 = serial)")
		cacheDir = flag.String("cache-dir", "", "reuse simulation results from this content-addressed cache (see svard-sweep)")
		noSkip   = flag.Bool("noskip", false, "drive every simulation through the per-cycle reference loop instead of the event-driven engine (bit-identical, ~2x slower; see EXPERIMENTS.md)")
		quiet    = flag.Bool("q", false, "suppress progress output")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file (go tool pprof)")
		memProf  = flag.String("memprofile", "", "write an allocation profile at exit to this file (go tool pprof)")
	)
	flag.Parse()

	// flushProfiles finalizes -cpuprofile/-memprofile output. Every exit
	// path must run it — the error paths below call fail, which flushes
	// before os.Exit (a deferred flush alone would be skipped and leave
	// a truncated CPU profile and no heap profile). The CPU profile file
	// is closed HERE, after StopCPUProfile's final flush — closing it on
	// a separate defer would run before this one and truncate short
	// profiles to zero bytes.
	flushed := false
	var cpuFile *os.File
	flushProfiles := func() {
		if flushed {
			return
		}
		flushed = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}
		if *memProf != "" {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the steady-state heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}
	}
	defer flushProfiles()
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		flushProfiles()
		os.Exit(1)
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fail(err)
		}
		cpuFile = f
		// Tag each cell's samples with its sweep coordinates so
		// `go tool pprof -tags` splits the profile by defense/nRH/module.
		// Off unless profiling: pprof.Do costs allocations per cell.
		obs.EnableProfilingLabels()
	}
	if !*fig12 && !*fig13 && !*obsv15 {
		*fig12, *fig13, *obsv15 = true, true, true
	}

	// Ctrl-C / SIGTERM aborts the sweep within one simulation's latency
	// instead of draining the whole job list; a second signal during the
	// drain kills the process the default way.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	go func() {
		<-ctx.Done()
		stopSignals()
	}()

	base := sim.DefaultConfig()
	base.Cores = *cores
	base.RowsPerBank = *rows
	base.InstrPerCore = *instr
	base.WarmupPerCore = *warmup
	base.Seed = *seed
	base.NoSkip = *noSkip
	base.Backend = *backend
	be, err := dram.BackendByName(*backend)
	if err != nil {
		fail(err)
	}

	progress := func(msg string) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "\r%-60s", msg)
		}
	}

	// With -cache-dir, every simulation routes through the persistent
	// result cache shared with svard-sweep: cells already computed by any
	// prior run are reused instead of resimulated.
	var runner sim.Runner
	var store *cache.Store
	if *cacheDir != "" {
		var err error
		store, err = cache.Open(*cacheDir, 0)
		if err != nil {
			fail(err)
		}
		runner = func(cfg sim.Config) (sim.Result, error) { return store.GetOrCompute(cfg, sim.PooledRun) }
	}

	if be.HBM {
		g := be.Geom
		fmt.Printf("Simulated system (%s): 8 cores 3.2GHz 4-wide 128-entry window,\n", be.Name)
		fmt.Printf("2MiB LLC/core; HBM2 %d channels x %d pseudo channels, %d rank(s),\n",
			g.Channels, g.PseudoChannels, g.Ranks)
		fmt.Printf("%d bank groups x %d banks, %d rows/bank (scaled); FR-FCFS cap 16, MOP.\n\n",
			g.BankGroups, g.BanksPerGroup, *rows)
	} else {
		fmt.Println("Table 4 simulated system: 8 cores 3.2GHz 4-wide 128-entry window,")
		fmt.Println("2MiB LLC/core; DDR4 1 channel, 2 ranks, 4 bank groups x 4 banks,")
		fmt.Printf("%d rows/bank (scaled; Table 4 uses 128K); FR-FCFS cap 16, MOP.\n\n", *rows)
	}

	if *fig12 || *obsv15 {
		opt := sim.Fig12Options{
			Base:     base,
			Mixes:    trace.Mixes(*mixes, *cores, *seed),
			Workers:  *parallel,
			Runner:   runner,
			Progress: progress,
		}
		if *defenses != "" {
			opt.Defenses = splitList(*defenses)
		}
		if *nrhs != "" {
			for _, s := range splitList(*nrhs) {
				v, err := strconv.ParseFloat(s, 64)
				if err != nil {
					fail(err)
				}
				opt.NRHs = append(opt.NRHs, v)
			}
		}
		cells, err := sim.RunFig12Ctx(ctx, opt)
		if err != nil {
			fail(err)
		}
		if !*quiet {
			fmt.Fprintln(os.Stderr)
		}
		if *fig12 {
			names := opt.Defenses
			if len(names) == 0 {
				names = sim.DefenseNames
			}
			for _, d := range names {
				fmt.Println(report.Fig12(d, cells))
			}
		}
		if *obsv15 {
			low := 64.0
			if len(opt.NRHs) > 0 {
				low = opt.NRHs[len(opt.NRHs)-1]
			}
			fmt.Println(report.Obsv15(cells, low))
		}
	}

	if *fig13 {
		cells, err := sim.RunFig13Ctx(ctx, sim.Fig13Options{Base: base, Workers: *parallel, Runner: runner, Progress: progress})
		if err != nil {
			fail(err)
		}
		if !*quiet {
			fmt.Fprintln(os.Stderr)
		}
		fmt.Println(report.Fig13(cells))
	}

	if store != nil {
		fmt.Printf("cache: %s\n", store.Stats())
	}
}

func splitList(s string) []string {
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}
