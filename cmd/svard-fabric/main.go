// svard-fabric is the distributed campaign coordinator: it shards a
// campaign's cells across registered svard-served workers with
// lease-based dispatch, doubles as the shared remote object store the
// workers publish results through, and folds the figures locally from
// its own cache — bit-identical to a single-node run, whatever workers
// join, die, or flap along the way.
//
// Usage:
//
//	svard-fabric [-addr HOST:PORT] [-cache-dir DIR] [-spec campaign.json]
//	             [-batch N] [-lease DUR] [-min-workers N] [-max-attempts N]
//	             [-workers N] [-resume] [-out FILE] [-q]
//
// Endpoints (see EXPERIMENTS.md, "Distributed fabric"):
//
//	POST /api/v1/workers        worker registration ({name, url})
//	POST /api/v1/heartbeat      lease renewal ({id}; 404 = re-register)
//	GET  /api/v1/objects/{key}  fetch a sealed result envelope
//	PUT  /api/v1/objects/{key}  publish a sealed result envelope
//	GET  /healthz               fleet + campaign summary
//
// With -spec, the coordinator waits for -min-workers live workers, runs
// the campaign, prints the folded figures plus the dispatch accounting,
// and exits; interrupted runs resume with -resume. Without -spec it
// serves as a standing coordinator and shared object store until
// terminated.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"svard/internal/cache"
	"svard/internal/campaign"
	"svard/internal/fabric"
	"svard/internal/report"
	"svard/internal/sim"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8355", "listen address")
		cacheDir    = flag.String("cache-dir", ".svard-cache", "result cache directory ('' = memory only; also the object store and journal home)")
		lru         = flag.Int("lru", 0, "in-memory LRU entries (0 = default)")
		specFile    = flag.String("spec", "", "campaign spec JSON file to dispatch (e.g. from svard-sweep -print-spec); '' = serve as a standing coordinator")
		batch       = flag.Int("batch", 0, "cells per lease (0 = 16)")
		lease       = flag.Duration("lease", 0, "lease TTL; a worker missing heartbeats this long loses its cells (0 = 15s)")
		minWorkers  = flag.Int("min-workers", 1, "live workers to wait for before dispatching")
		maxAttempts = flag.Int("max-attempts", 0, "dispatch attempts per cell before the coordinator computes it locally (0 = 3)")
		workers     = flag.Int("workers", 0, "local parallelism for the fold and last-resort computes (0 = GOMAXPROCS)")
		resume      = flag.Bool("resume", false, "resume this campaign's interrupted journal")
		outFile     = flag.String("out", "", "write the folded outcome and dispatch stats as JSON to this file")
		quiet       = flag.Bool("q", false, "suppress dispatch progress output")
	)
	flag.Parse()

	store, err := cache.Open(*cacheDir, *lru)
	if err != nil {
		fatal(err)
	}
	cfg := fabric.Config{
		Store:           store,
		Workers:         *workers,
		BatchSize:       *batch,
		LeaseTTL:        *lease,
		MinWorkers:      *minWorkers,
		MaxCellAttempts: *maxAttempts,
		Resume:          *resume,
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	coord, err := fabric.New(cfg)
	if err != nil {
		fatal(err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: coord.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	where := *cacheDir
	if where == "" {
		where = "(memory only)"
	}
	fmt.Fprintf(os.Stderr, "svard-fabric: coordinating on %s, cache %s\n", *addr, where)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop() // a second signal kills the process the default way
	}()

	if *specFile == "" {
		// Standing coordinator: serve registrations, heartbeats, and the
		// object store until terminated.
		select {
		case <-ctx.Done():
		case err := <-errc:
			fatal(err)
		}
		shutdown(httpSrv)
		return
	}

	b, err := os.ReadFile(*specFile)
	if err != nil {
		fatal(err)
	}
	var spec campaign.Spec
	if err := json.Unmarshal(b, &spec); err != nil {
		fatal(fmt.Errorf("%s: %w", *specFile, err))
	}
	if err := spec.Validate(); err != nil {
		fatal(err)
	}
	jobs, err := spec.Jobs()
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "svard-fabric: campaign %s: %d cells; waiting for %d worker(s)\n",
		spec.Fingerprint()[:16], len(jobs), *minWorkers)

	res, err := coord.RunCtx(ctx, spec)
	if err != nil {
		if *cacheDir != "" {
			fmt.Fprintf(os.Stderr, "campaign interrupted (cache %s; re-run with -resume to continue): ", *cacheDir)
		}
		fatal(err)
	}

	if res.Fig12 != nil {
		names := spec.Defenses
		if len(names) == 0 {
			names = sim.DefenseNames
		}
		for _, d := range names {
			fmt.Println(report.Fig12(d, res.Fig12))
		}
	}
	if res.Fig13 != nil {
		fmt.Println(report.Fig13(res.Fig13))
	}
	fmt.Printf("campaign: %d cells, %d computed, %d served from cache", res.Total, res.Computed, res.Served)
	if res.Resumed > 0 {
		fmt.Printf(", %d resumed from a previous run's journal", res.Resumed)
	}
	fmt.Printf("\ndispatch: %s\n", res.Dispatch)

	if *outFile != "" {
		b, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*outFile, append(b, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "outcome written to %s\n", *outFile)
	}
	shutdown(httpSrv)
}

func shutdown(s *http.Server) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	s.Shutdown(ctx)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
