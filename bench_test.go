// Package svard's root benchmarks regenerate every table and figure of
// the paper at bench scale: each benchmark is the scaled-down driver of
// one experiment (see DESIGN.md §3 for the index and EXPERIMENTS.md for
// the scaling rationale). The cmd/ binaries run the same experiments at
// full size.
package svard

import (
	"runtime"
	"sync"
	"testing"

	"svard/internal/charz"
	"svard/internal/core"
	"svard/internal/obs"
	"svard/internal/population"
	"svard/internal/profile"
	"svard/internal/sim"
	"svard/internal/temporal"
)

// benchModule memoizes small calibrated modules across benchmarks.
var benchModules sync.Map

func benchModule(b *testing.B, label string) *profile.Module {
	b.Helper()
	if m, ok := benchModules.Load(label); ok {
		return m.(*profile.Module)
	}
	spec, ok := profile.SpecByLabel(label)
	if !ok {
		b.Fatalf("unknown module %s", label)
	}
	m, err := profile.BuildScaled(spec, 1, 2048, 2048)
	if err != nil {
		b.Fatal(err)
	}
	benchModules.Store(label, m)
	return m
}

// BenchmarkTable5ModuleInventory regenerates Table 5's per-module
// HCfirst statistics.
func BenchmarkTable5ModuleInventory(b *testing.B) {
	m := benchModule(b, "H0")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Stride 1: the module minimum lives in a single row, so exact
		// Table 5 matching requires visiting every row.
		row := charz.Table5(m, 1)
		if row.MinHC != m.Spec.MinHC {
			b.Fatalf("min = %v", row.MinHC)
		}
	}
}

// BenchmarkFig3BERAcrossBanks regenerates Fig. 3's per-bank BER boxes.
func BenchmarkFig3BERAcrossBanks(b *testing.B) {
	m := benchModule(b, "M1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := charz.Fig3(m, 4)
		if len(d.Banks) != 4 {
			b.Fatal("banks missing")
		}
	}
}

// BenchmarkFig4BERByLocation regenerates Fig. 4's location series.
func BenchmarkFig4BERByLocation(b *testing.B) {
	m := benchModule(b, "S4")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pts := charz.Fig4(m, 128); len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

// BenchmarkFig5HCFirstDistribution regenerates Fig. 5's histogram.
func BenchmarkFig5HCFirstDistribution(b *testing.B) {
	m := benchModule(b, "S0")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if levels := charz.Fig5(m, 2); len(levels) != 14 {
			b.Fatal("levels missing")
		}
	}
}

// BenchmarkFig6HCFirstByLocation regenerates Fig. 6's scatter.
func BenchmarkFig6HCFirstByLocation(b *testing.B) {
	m := benchModule(b, "H4")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pts := charz.Fig6(m, 128); len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

// BenchmarkFig7RowPress regenerates Fig. 7's on-time sweep.
func BenchmarkFig7RowPress(b *testing.B) {
	m := benchModule(b, "H2")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		boxes := charz.Fig7(m, 4)
		if boxes[2].Summary.Mean >= boxes[0].Summary.Mean {
			b.Fatal("RowPress shape broken")
		}
	}
}

// BenchmarkFig8SubarrayClustering regenerates Fig. 8's silhouette sweep.
func BenchmarkFig8SubarrayClustering(b *testing.B) {
	m := benchModule(b, "S2")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := charz.Fig8(m, 3)
		if d.BestK != d.TruthK {
			b.Fatalf("best k %d != truth %d", d.BestK, d.TruthK)
		}
	}
}

// BenchmarkFig9SpatialFeatureF1 regenerates Fig. 9's correlation curve.
func BenchmarkFig9SpatialFeatureF1(b *testing.B) {
	m := benchModule(b, "S1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := charz.Fig9(m); len(d.Fraction) == 0 {
			b.Fatal("empty curve")
		}
	}
}

// BenchmarkTable3CorrelatedFeatures regenerates Table 3's membership.
func BenchmarkTable3CorrelatedFeatures(b *testing.B) {
	mS := benchModule(b, "S4")
	mM := benchModule(b, "M4")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(charz.Fig9(mS).Strong) == 0 {
			b.Fatal("S4 lost its strong feature")
		}
		if len(charz.Fig9(mM).Strong) != 0 {
			b.Fatal("M4 gained a strong feature")
		}
	}
}

// BenchmarkFig10Aging regenerates Fig. 10's aging transitions.
func BenchmarkFig10Aging(b *testing.B) {
	m := benchModule(b, "H3")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cells := charz.Fig10(m, 68, 2); len(cells) == 0 {
			b.Fatal("no transitions")
		}
	}
}

// BenchmarkSection64HardwareCost regenerates §6.4's cost arithmetic.
func BenchmarkSection64HardwareCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tc := core.TableImplementation(core.DefaultCostConfig())
		if tc.PerBankMM2 < 0.05 || tc.PerBankMM2 > 0.06 {
			b.Fatalf("per-bank area %v", tc.PerBankMM2)
		}
		dc := core.DRAMBitsImplementation(core.DefaultCostConfig())
		if dc.ArrayOverheadFrac <= 0 {
			b.Fatal("bad overhead")
		}
	}
}

// benchFig12 runs one Fig. 12 defense column at bench scale.
func benchFig12(b *testing.B, defense string) {
	b.Helper()
	base := sim.DefaultConfig()
	base.Cores = 2
	base.RowsPerBank = 2048
	base.CellsPerRow = 2048
	base.InstrPerCore = 15_000
	base.WarmupPerCore = 3_000
	opt := sim.Fig12Options{
		Base:     base,
		Mixes:    [][]string{{"mcf06", "ycsb-a"}},
		NRHs:     []float64{1024, 64},
		Defenses: []string{defense},
		Profiles: []string{"S0"},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells, err := sim.RunFig12(opt)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			if c.Violations != 0 {
				b.Fatalf("%s: %d bitflips", c.Config, c.Violations)
			}
		}
	}
}

// BenchmarkFig12AQUA..RRS regenerate Fig. 12, one defense per bench.
func BenchmarkFig12AQUA(b *testing.B)        { benchFig12(b, "aqua") }
func BenchmarkFig12BlockHammer(b *testing.B) { benchFig12(b, "blockhammer") }
func BenchmarkFig12Hydra(b *testing.B)       { benchFig12(b, "hydra") }
func BenchmarkFig12PARA(b *testing.B)        { benchFig12(b, "para") }
func BenchmarkFig12RRS(b *testing.B)         { benchFig12(b, "rrs") }

// benchFig12Sweep runs a multi-cell Fig. 12 sweep (2 defenses x 3 nRH
// values x NoSvard/Svärd, 12 cell simulations + 1 baseline) with the
// given worker count. The Serial/Parallel pair below documents the
// exec-pool speedup: on an N-core runner the Parallel variant should
// approach N x the Serial wall-clock (>= 2x on 4 cores), with
// bit-identical cells — see EXPERIMENTS.md, "parallel sweeps". The
// NoSkip variant drives the same sweep through the per-cycle reference
// loop; Serial vs NoSkip documents the event engine's cycle-skipping
// speedup (>= 2x on the default spec, bit-identical cells — see
// EXPERIMENTS.md, "event-driven engine").
func benchFig12Sweep(b *testing.B, workers int, noSkip bool, backend string, tspec *temporal.Spec, rec *obs.Recorder) {
	b.Helper()
	base := sim.DefaultConfig()
	base.Cores = 2
	base.RowsPerBank = 2048
	base.CellsPerRow = 2048
	base.InstrPerCore = 15_000
	base.WarmupPerCore = 3_000
	base.NoSkip = noSkip
	base.Backend = backend
	base.Temporal = tspec
	opt := sim.Fig12Options{
		Base:     base,
		Mixes:    [][]string{{"mcf06", "ycsb-a"}},
		NRHs:     []float64{1024, 256, 64},
		Defenses: []string{"para", "rrs"},
		Profiles: []string{"S0"},
		Workers:  workers,
	}
	if rec != nil {
		// One shared recorder across the whole sweep (serial only — a
		// Recorder is not concurrency-safe): the closure is created once
		// out here, so recording stays inside the allocation budget.
		opt.Runner = func(cfg sim.Config) (sim.Result, error) { return sim.PooledRunRecorded(cfg, rec) }
	}
	// Warm the module cache (and the run-state pool) so the timed region
	// measures the simulation fan-out, not the one-off module
	// calibration or the first-cell arena growth.
	if _, err := sim.RunFig12(opt); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells, err := sim.RunFig12(opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(cells) != 12 {
			b.Fatalf("cells = %d", len(cells))
		}
	}
}

// BenchmarkFig12SweepSerial is the Workers=1 reference for the sweep.
// It runs with a flight recorder attached, so the reported allocs/op
// holds the telemetry layer to the same allocation-flat budget as the
// sweep itself.
func BenchmarkFig12SweepSerial(b *testing.B) {
	rec := &obs.Recorder{}
	benchFig12Sweep(b, 1, false, "", nil, rec)
	if rec.Counters.Ticks == 0 {
		b.Fatal("recorder attached but recorded nothing")
	}
}

// BenchmarkFig12SweepParallel fans the same sweep across all cores.
func BenchmarkFig12SweepParallel(b *testing.B) {
	benchFig12Sweep(b, runtime.GOMAXPROCS(0), false, "", nil, nil)
}

// BenchmarkFig12SweepSerialNoSkip is the per-cycle reference loop on
// the Serial sweep: the denominator of the event engine's speedup.
func BenchmarkFig12SweepSerialNoSkip(b *testing.B) { benchFig12Sweep(b, 1, true, "", nil, nil) }

// BenchmarkFig12SweepSerialHBM2 is the Serial sweep on the hbm2 preset:
// four pseudo-channel controllers per machine instead of one, so it
// tracks the multi-channel backend's cost (routing, per-channel defense
// instances, the widened NextEvent bound) release over release.
func BenchmarkFig12SweepSerialHBM2(b *testing.B) { benchFig12Sweep(b, 1, false, "hbm2", nil, nil) }

// BenchmarkFig12SweepSerialTemporal is the Serial sweep with a mild
// temporal process attached: every leg crosses epoch edges and samples
// live thresholds through the per-row memo, so Serial vs SerialTemporal
// tracks the epoch-table overhead (edge ticks, memo fills, the
// NextEvent epoch bound) release over release. The process is gentle on
// purpose — it should move thresholds, not trigger a violation storm
// that would make the benchmark measure tracker bookkeeping instead.
func BenchmarkFig12SweepSerialTemporal(b *testing.B) {
	benchFig12Sweep(b, 1, false, "", &temporal.Spec{EpochCycles: 65536, Drift: -0.01, Sigma: 0.02}, nil)
}

// BenchmarkPopulationSweep runs the Monte Carlo confidence-band sweep
// over a small synthetic population at bench scale. Unlike the Fig. 12
// sweep benches, each iteration pays the per-module calibration again:
// the population path evicts every chunk's module tables after folding
// (the property that keeps a 10K-chip sweep in constant memory), so
// recalibration IS the representative cost profile of a population
// sweep.
func BenchmarkPopulationSweep(b *testing.B) {
	base := sim.DefaultConfig()
	base.Cores = 2
	base.RowsPerBank = 2048
	base.CellsPerRow = 2048
	base.InstrPerCore = 15_000
	base.WarmupPerCore = 3_000
	opt := sim.PopulationOptions{
		Base:       base,
		Population: population.Ref{Seed: 1, Size: 4},
		Mixes:      [][]string{{"mcf06", "ycsb-a"}},
		NRHs:       []float64{64},
		Defenses:   []string{"para"},
		Chunk:      2,
		Workers:    1,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells, err := sim.RunPopulation(opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(cells) != 2 || cells[0].Modules != 4 {
			b.Fatalf("bands = %+v", cells)
		}
	}
}

// BenchmarkFig13Adversarial regenerates Fig. 13 at bench scale.
func BenchmarkFig13Adversarial(b *testing.B) {
	base := sim.DefaultConfig()
	base.Cores = 2
	base.RowsPerBank = 2048
	base.CellsPerRow = 2048
	base.InstrPerCore = 15_000
	base.WarmupPerCore = 3_000
	opt := sim.Fig13Options{
		Base:     base,
		NRH:      64,
		Benign:   []string{"mcf06"},
		Profiles: []string{"S0"},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells, err := sim.RunFig13(opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(cells) == 0 {
			b.Fatal("no cells")
		}
	}
}
